"""L-rules: store lock discipline across call paths.

The PR-6 store rework made :class:`~repro.results.store.RunStore` safe for
concurrent writers by funnelling every mutation through a flock'd append
path — a property stated in prose and guarded only by crash tests that
fork real processes.  These rules hold it statically:

* **L501** — every write/rename/truncate call in the store module must be
  *dominated* by the store lock: lexically inside a matching ``with``
  block, or in a function every resolved caller of which enters locked
  (computed as a fixpoint over the call graph).  Functions with unknown
  callers count as unlocked — if anyone could call it without the lock,
  the write is flagged.
* **L502** — a function handed to a multiprocessing dispatch under
  ``src/`` must be a plain module-level function that cannot reach a store
  method: a bound method or closure would capture an open store handle
  (buffered file positions, the advisory lock fd) across the fork
  boundary, and a worker that appends would race the parent's index
  mirror.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.callgraph import CallGraph, CallSite, FunctionInfo, chain_text
from repro.lint.dataflow import lock_dominated, resolve_call_qualname, site_locked
from repro.lint.engine import Project
from repro.lint.framework import Finding, GraphRule, rule

#: Method-call suffixes that mutate files/directories when the receiver is
#: a handle or path (the store module's receivers always are).
_WRITE_SUFFIXES = (
    ".write",
    ".writelines",
    ".truncate",
    ".write_text",
    ".write_bytes",
    ".mkdir",
    ".rename",
    ".replace",
    ".unlink",
    ".rmdir",
    ".touch",
)

#: Fully-resolved callables that mutate the filesystem.
_WRITE_CALLS = frozenset(
    {
        "os.replace",
        "os.rename",
        "os.write",
        "os.truncate",
        "os.ftruncate",
        "os.unlink",
        "os.remove",
        "os.mkdir",
        "os.makedirs",
        "os.rmdir",
        "shutil.move",
        "shutil.rmtree",
        "shutil.copy",
        "shutil.copyfile",
    }
)

#: Pool/process dispatch spellings whose argument runs in a forked worker.
_DISPATCH_SUFFIXES = (
    ".imap_unordered",
    ".imap",
    ".map",
    ".map_async",
    ".starmap",
    ".starmap_async",
    ".apply_async",
    ".submit",
)
_DISPATCH_CALLS = frozenset({"multiprocessing.Process", "Process"})


def _worker_argument(call: ast.Call) -> Optional[ast.expr]:
    """The function object a dispatch call ships to the worker process."""
    for keyword in call.keywords:
        if keyword.arg in ("target", "func", "initializer"):
            return keyword.value
    return call.args[0] if call.args else None


def _is_write_site(site: CallSite, dotted: str) -> bool:
    return dotted in _WRITE_CALLS or any(
        site.target_text.endswith(suffix) for suffix in _WRITE_SUFFIXES
    )


@rule(
    "L501",
    name="store-writes-locked",
    description=(
        "every write in the results store must be dominated by the store "
        "lock (lexically or via every resolved caller)"
    ),
)
class StoreWritesLockedRule(GraphRule):
    def check_graph(self, project: Project, graph: CallGraph) -> Iterator[Finding]:
        config = project.config
        lock_names = config.store_lock_names
        dominated = lock_dominated(graph, lock_names)
        for fid in sorted(graph.functions):
            info = graph.functions[fid]
            if not info.relpath.endswith(config.store_module_suffix):
                continue
            if info.class_name in config.store_lock_classes:
                continue  # acquiring the lock cannot require holding it
            source = project.find(info.relpath)
            if source is None:  # pragma: no cover - store is in lint scope
                continue
            imports = graph.module_imports.get(info.module, {})
            for site in graph.calls_from(fid):
                dotted = resolve_call_qualname(imports, site.target_text)
                if not _is_write_site(site, dotted):
                    continue
                if site_locked(site, lock_names) or dominated.get(fid, False):
                    continue
                yield self.finding(
                    source,
                    site.node,
                    f"{site.target_text}() in {info.qualname} can run "
                    f"without the store lock ({' / '.join(lock_names)}): not "
                    "inside a lock `with` block, and at least one call path "
                    "into this function enters unlocked",
                )


@rule(
    "L502",
    name="no-store-capture-across-fork",
    description=(
        "multiprocessing workers under src/ must be module-level functions "
        "that cannot reach an open store handle"
    ),
)
class NoStoreCaptureAcrossForkRule(GraphRule):
    def check_graph(self, project: Project, graph: CallGraph) -> Iterator[Finding]:
        config = project.config
        src_prefix = config.src_root.rstrip("/") + "/"
        for fid in sorted(graph.functions):
            info = graph.functions[fid]
            if not info.relpath.startswith(src_prefix):
                continue
            source = project.find(info.relpath)
            if source is None:  # pragma: no cover - src files are in scope
                continue
            imports = graph.module_imports.get(info.module, {})
            for site in graph.calls_from(fid):
                dotted = resolve_call_qualname(imports, site.target_text)
                is_dispatch = dotted in _DISPATCH_CALLS or any(
                    site.target_text.endswith(s) for s in _DISPATCH_SUFFIXES
                )
                if not is_dispatch:
                    continue
                worker = _worker_argument(site.node)
                if worker is None:
                    continue
                problem = self._judge_worker(project, graph, info, worker)
                if problem is not None:
                    yield self.finding(
                        source,
                        worker,
                        f"worker handed to {site.target_text}() {problem}; "
                        "pass a module-level function and re-open the store "
                        "in the parent after the pool drains",
                    )

    def _judge_worker(
        self,
        project: Project,
        graph: CallGraph,
        caller: FunctionInfo,
        worker: ast.expr,
    ) -> Optional[str]:
        """``None`` when the worker is provably fork-safe, else the problem."""
        config = project.config
        if isinstance(worker, ast.Lambda):
            return "is a lambda (closes over the dispatching scope)"
        chain = chain_text(worker)
        if chain is None:
            return None  # not a name; conservatively out of scope
        root, _, rest = chain.partition(".")
        if root == "self":
            decl = graph.classes.get((caller.module, caller.class_name or ""))
            attr_types = decl.attr_types if decl is not None else {}
            holds_store = any(
                name in config.store_classes for _, name in attr_types.values()
            )
            if holds_store:
                return (
                    "is a bound method of a class holding an open store "
                    "handle (pickling it captures the handle across the fork)"
                )
            return "is a bound method (captures self across the fork boundary)"
        nested = f"{caller.relpath}::{caller.qualname}.{chain}"
        if not rest and nested in graph.functions:
            return "is a nested function (closes over the dispatching scope)"
        target = self._resolve_worker(graph, caller, root, rest)
        if target is None:
            return None  # unresolvable alias: documented conservative gap
        store_methods = {
            fid
            for fid in graph.reachable([target])
            for klass in (graph.functions[fid].class_name,)
            if klass in config.store_classes
            or klass in config.store_lock_classes
        }
        if store_methods:
            sample = graph.functions[sorted(store_methods)[0]]
            return (
                f"transitively calls {sample.qualname}() — store access "
                "belongs to the parent process"
            )
        return None

    @staticmethod
    def _resolve_worker(
        graph: CallGraph, caller: FunctionInfo, root: str, rest: str
    ) -> Optional[str]:
        """Function id a worker Name/dotted reference points at, if known."""
        imports = graph.module_imports.get(caller.module, {})
        if not rest:
            same_module = f"{caller.relpath}::{root}"
            if same_module in graph.functions:
                return same_module
            origin = imports.get(root)
        else:
            base = imports.get(root)
            origin = f"{base}.{rest}" if base else None
        if origin is None:
            return None
        module, _, name = origin.rpartition(".")
        relpath = graph.modules.get(module)
        if relpath is None:
            return None
        candidate = f"{relpath}::{name}"
        return candidate if candidate in graph.functions else None
