"""Project-wide resolved call graph over the per-file symbol tables.

The per-file pass (:mod:`repro.lint.symbols`) answers "what does this name
mean *in this file*"; this module stitches those answers into one graph so
rules can ask cross-file questions: "can this sim-layer function reach
stdlib entropy through any chain of helpers?" (T-rules), "is this store
write always dominated by a lock acquisition?" (L-rules).

Resolution is deliberately **conservative**: an edge is only recorded when
the callee provably is the named project function.  Everything dynamic —
``functools.partial`` application, ``getattr`` lookups, bound-method
aliases, calls through values of unknown type — is recorded as an
*unresolved* call site with a reason, never guessed into a false edge.
Receiver types are inferred for the cheap, common shapes only:

* ``self.method()`` and ``self.attr.method()`` inside a class (instance
  attribute types come from ``self.attr = ClassName(...)`` assignments);
* module attributes holding instances (``REGISTRY = ComponentRegistry()``
  then ``REGISTRY.register(...)``, from any importing file);
* locals assigned exactly one project-class construction
  (``cache = DataCache(); cache.add(...)``) and parameters annotated with a
  project class.

Construction is memoised per lint run
(:meth:`repro.lint.engine.Project.callgraph`), so the graph is built at
most once no matter how many rules consume it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.symbols import _is_type_checking_test

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.lint.engine import Project, SourceFile

#: Qualname of the pseudo-function holding module-level statements.
MODULE_SCOPE = "<module>"

#: ``functools.partial`` spellings whose first argument is *not* called here.
_PARTIAL_QUALNAMES = ("functools.partial", "partial")


@dataclass
class FunctionInfo:
    """One function/method definition (or the module-level pseudo scope)."""

    id: str  # "<relpath>::<qualname>"
    relpath: str
    module: str  # dotted module path ("repro.results.store", "tests.lint.x")
    qualname: str  # "Class.method", "outer.inner", "<module>"
    name: str
    class_name: Optional[str]
    node: Optional[ast.AST]  # the def node; the Module node for MODULE_SCOPE
    lineno: int
    layer: Optional[str]
    is_decorated: bool = False

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class CallSite:
    """One call expression inside one function scope."""

    caller: str  # FunctionInfo id
    callee: Optional[str]  # resolved FunctionInfo id, or None
    node: ast.Call
    target_text: str  # best-effort dotted rendering of the callee expr
    reason: Optional[str] = None  # why the callee is unresolved
    lock_contexts: Tuple[str, ...] = ()  # `with` expressions enclosing the site

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 0)


@dataclass
class ClassDecl:
    """What the graph knows about one project class."""

    module: str
    name: str
    relpath: str
    node: ast.ClassDef
    methods: Dict[str, str] = field(default_factory=dict)  # name -> function id
    bases: Tuple[str, ...] = ()  # base expressions as written
    attr_types: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    # ``self.x = ClassName(...)`` anywhere in the body -> x: (module, class)


class CallGraph:
    """Functions, resolved call edges, and the documented unresolved rest."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[Tuple[str, str], ClassDecl] = {}  # (module, name)
        self.calls: List[CallSite] = []
        self.out_edges: Dict[str, List[CallSite]] = {}
        self.in_edges: Dict[str, List[CallSite]] = {}
        self.unresolved: List[CallSite] = []
        self.modules: Dict[str, str] = {}  # dotted module -> relpath
        #: module -> attribute name -> (module, class) of the instance it holds.
        self.module_attr_types: Dict[str, Dict[str, Tuple[str, str]]] = {}
        #: per-module import tables (module -> local name -> dotted origin).
        self.module_imports: Dict[str, Dict[str, str]] = {}

    # ------------------------------------------------------------ queries

    def function(self, relpath: str, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(f"{relpath}::{qualname}")

    def callers_of(self, function_id: str) -> List[CallSite]:
        return self.in_edges.get(function_id, [])

    def calls_from(self, function_id: str) -> List[CallSite]:
        return self.out_edges.get(function_id, [])

    def reachable(self, seeds: Sequence[str], reverse: bool = False) -> Set[str]:
        """Function ids reachable from *seeds* along resolved edges.

        Forward (``reverse=False``) follows calls outward ("what can these
        functions reach"); ``reverse=True`` follows callers inward ("what
        can reach these functions").  Seeds are included.
        """
        edges = self.in_edges if reverse else self.out_edges
        seen: Set[str] = set()
        pending = [seed for seed in seeds if seed in self.functions]
        while pending:
            current = pending.pop()
            if current in seen:
                continue
            seen.add(current)
            for site in edges.get(current, ()):
                neighbour = site.caller if reverse else site.callee
                if neighbour is not None and neighbour not in seen:
                    pending.append(neighbour)
        return seen

    def resolve_class(self, module: str, name: str, _depth: int = 0) -> Optional[ClassDecl]:
        """The project class ``module.name`` names, following import re-binds.

        ``node_base.DataCache`` where ``node_base`` does ``from cache import
        DataCache`` resolves to the class defined in ``cache``; chains deeper
        than a few hops (or cycles) resolve to ``None``.
        """
        if _depth > 8:
            return None
        decl = self.classes.get((module, name))
        if decl is not None:
            return decl
        origin = self.module_imports.get(module, {}).get(name)
        if origin is None:
            return None
        origin_module, _, origin_name = origin.rpartition(".")
        if not origin_module:
            return None
        return self.resolve_class(origin_module, origin_name, _depth + 1)

    def resolve_method(
        self, decl: ClassDecl, method: str, _seen: Optional[Set[Tuple[str, str]]] = None
    ) -> Optional[str]:
        """Function id of *method* on *decl*, searching project bases too."""
        seen = _seen if _seen is not None else set()
        if (decl.module, decl.name) in seen:
            return None
        seen.add((decl.module, decl.name))
        if method in decl.methods:
            return decl.methods[method]
        for base in decl.bases:
            base_decl = self._resolve_base(decl, base)
            if base_decl is not None:
                found = self.resolve_method(base_decl, method, seen)
                if found is not None:
                    return found
        return None

    def _resolve_base(self, decl: ClassDecl, base: str) -> Optional[ClassDecl]:
        imports = self.module_imports.get(decl.module, {})
        head, _, rest = base.partition(".")
        if rest:  # ``module_alias.Base``
            origin = imports.get(head)
            if origin is None:
                return None
            module, _, name = f"{origin}.{rest}".rpartition(".")
            return self.resolve_class(module, name) if module else None
        if head in imports:
            module, _, name = imports[head].rpartition(".")
            return self.resolve_class(module, name) if module else None
        return self.classes.get((decl.module, head))

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dump used by ``repro lint --graph-debug``."""
        edges = sorted(
            (site.caller, site.callee, site.lineno, site.lock_contexts)
            for site in self.calls
            if site.callee is not None
        )
        unresolved = sorted(
            (site.caller, site.target_text, site.lineno, site.reason or "unresolved")
            for site in self.unresolved
        )
        return {
            "functions": sorted(self.functions),
            "edges": [
                {"caller": c, "callee": e, "line": line, "locks": list(locks)}
                for c, e, line, locks in edges
            ],
            "unresolved": [
                {"caller": c, "target": t, "line": line, "reason": reason}
                for c, t, line, reason in unresolved
            ],
            "counts": {
                "functions": len(self.functions),
                "resolved_edges": sum(1 for s in self.calls if s.callee is not None),
                "unresolved_calls": len(self.unresolved),
            },
        }


def module_name(relpath: str, src_root: str = "src") -> str:
    """Dotted module path of *relpath* (``src/repro/x.py`` -> ``repro.x``)."""
    parts = list(relpath.split("/"))
    if parts and parts[0] == src_root:
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def chain_text(node: ast.expr) -> Optional[str]:
    """Dotted source rendering of a Name/Attribute chain (``self._lock``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_with_contexts(
    root: ast.AST, enter_defs: bool = False
) -> Iterator[Tuple[ast.AST, Tuple[str, ...]]]:
    """Yield ``(node, with_contexts)`` for every runtime node under *root*.

    ``with_contexts`` is the tuple of dotted renderings of every ``with``
    item expression lexically enclosing the node (outermost first); the
    L-rules match these against the configured lock names.  Bodies of
    nested function/class definitions are skipped unless *enter_defs* (they
    run in their own scope, under their own contexts) — the def nodes
    themselves are still yielded.  ``if TYPE_CHECKING:`` bodies never run
    and are always skipped.
    """
    pending: List[Tuple[ast.AST, Tuple[str, ...], bool]] = [(root, (), True)]
    while pending:
        node, contexts, expand = pending.pop()
        yield node, contexts
        if not expand:
            continue
        if isinstance(node, ast.If) and _is_type_checking_test(node.test):
            pending.extend((child, contexts, True) for child in node.orelse)
            continue
        if isinstance(node, (ast.With, ast.AsyncWith)):
            entered = contexts + tuple(
                text
                for item in node.items
                if (
                    text := chain_text(
                        item.context_expr.func
                        if isinstance(item.context_expr, ast.Call)
                        else item.context_expr
                    )
                )
                is not None
            )
            for item in node.items:
                pending.append((item.context_expr, contexts, True))
            pending.extend((child, entered, True) for child in node.body)
            continue
        for child in ast.iter_child_nodes(node):
            nested_def = not enter_defs and isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
            pending.append((child, contexts, not nested_def))


class _Builder:
    """Two-pass construction: declarations first, then call resolution."""

    def __init__(self, project: "Project") -> None:
        self.project = project
        self.graph = CallGraph()
        self.src_root = project.config.src_root
        self._sources: List["SourceFile"] = [
            source for source in project.files if source.tree is not None
        ]
        #: Calls owned by each function scope: id -> [(Call, contexts)].
        self._scope_calls: Dict[str, List[Tuple[ast.Call, Tuple[str, ...]]]] = {}

    def build(self) -> CallGraph:
        for source in self._sources:
            self._declare_file(source)
        for source in self._sources:
            self._infer_attribute_types(source)
        for source in self._sources:
            self._resolve_file(source)
        return self.graph

    # ------------------------------------------------------- declarations

    def _declare_file(self, source: "SourceFile") -> None:
        graph = self.graph
        module = module_name(source.relpath, self.src_root)
        graph.modules[module] = source.relpath
        graph.module_imports[module] = dict(source.symbols.imports)
        graph.functions[f"{source.relpath}::{MODULE_SCOPE}"] = FunctionInfo(
            id=f"{source.relpath}::{MODULE_SCOPE}",
            relpath=source.relpath,
            module=module,
            qualname=MODULE_SCOPE,
            name=MODULE_SCOPE,
            class_name=None,
            node=source.tree,
            lineno=0,
            layer=source.layer,
        )

        def declare(
            body: Sequence[ast.stmt], prefix: str, class_decl: Optional[ClassDecl]
        ) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}{stmt.name}"
                    info = FunctionInfo(
                        id=f"{source.relpath}::{qualname}",
                        relpath=source.relpath,
                        module=module,
                        qualname=qualname,
                        name=stmt.name,
                        class_name=class_decl.name if class_decl else None,
                        node=stmt,
                        lineno=stmt.lineno,
                        layer=source.layer,
                        is_decorated=bool(stmt.decorator_list),
                    )
                    graph.functions[info.id] = info
                    if class_decl is not None:
                        class_decl.methods.setdefault(stmt.name, info.id)
                    declare(stmt.body, f"{qualname}.", None)
                elif isinstance(stmt, ast.ClassDef):
                    decl = ClassDecl(
                        module=module,
                        name=stmt.name,
                        relpath=source.relpath,
                        node=stmt,
                        bases=tuple(
                            text
                            for base in stmt.bases
                            if (text := chain_text(base)) is not None
                        ),
                    )
                    graph.classes.setdefault((module, stmt.name), decl)
                    declare(stmt.body, f"{stmt.name}.", decl)
                elif isinstance(stmt, ast.If):
                    if _is_type_checking_test(stmt.test):
                        declare(stmt.orelse, prefix, class_decl)
                    else:
                        declare(stmt.body, prefix, class_decl)
                        declare(stmt.orelse, prefix, class_decl)
                elif isinstance(stmt, ast.Try):
                    declare(stmt.body, prefix, class_decl)
                    for handler in stmt.handlers:
                        declare(handler.body, prefix, class_decl)
                    declare(stmt.orelse, prefix, class_decl)
                    declare(stmt.finalbody, prefix, class_decl)
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    declare(stmt.body, prefix, class_decl)

        declare(source.tree.body, "", None)

    def _infer_attribute_types(self, source: "SourceFile") -> None:
        """Second declaration sweep: instance/module attribute types.

        Runs after every class in the project is declared, so an attribute
        assigned a class constructed from *any* module resolves.
        """
        module = module_name(source.relpath, self.src_root)
        for (decl_module, _name), decl in self.graph.classes.items():
            if decl_module != module or decl.relpath != source.relpath:
                continue
            for node in ast.walk(decl.node):
                if not isinstance(node, ast.Assign):
                    continue
                typed = self._constructed_class(source, node.value)
                if typed is None:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        decl.attr_types.setdefault(target.attr, typed)
        table = self.graph.module_attr_types.setdefault(module, {})
        for stmt in source.tree.body:
            if not isinstance(stmt, ast.Assign):
                continue
            typed = self._constructed_class(source, stmt.value)
            if typed is None:
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    table.setdefault(target.id, typed)

    def _dotted_class(self, source: "SourceFile", chain: str) -> Optional[Tuple[str, str]]:
        """``(module, class)`` when *chain* names a project class here."""
        root, _, rest = chain.partition(".")
        origin = source.symbols.imports.get(root, root)
        dotted = f"{origin}.{rest}" if rest else origin
        module, _, name = dotted.rpartition(".")
        if module and (module, name) in self.graph.classes:
            return module, name
        own_module = module_name(source.relpath, self.src_root)
        if not rest and (own_module, chain) in self.graph.classes:
            return own_module, chain
        return None

    def _constructed_class(
        self, source: "SourceFile", value: ast.expr
    ) -> Optional[Tuple[str, str]]:
        """``(module, class)`` when *value* is ``ProjectClass(...)``."""
        if not isinstance(value, ast.Call):
            return None
        chain = chain_text(value.func)
        return self._dotted_class(source, chain) if chain else None

    # --------------------------------------------------------- resolution

    def _resolve_file(self, source: "SourceFile") -> None:
        self._scope_calls = {}
        module = module_name(source.relpath, self.src_root)
        self._assign_ownership(source)
        for owner_id, calls in self._scope_calls.items():
            info = self.graph.functions[owner_id]
            locals_view = self._scope_locals(source, info)
            for node, contexts in calls:
                self._resolve_call(source, module, info, node, contexts, locals_view)

    def _assign_ownership(self, source: "SourceFile") -> None:
        """One traversal attributing every Call to its innermost function.

        Module-level statements, class bodies and decorator expressions of
        nested defs run at import time and belong to the ``<module>`` scope;
        a def's own decorators are attributed to the def itself so "this
        function is registered/wrapped by X" shows as an edge from it.
        """
        module_id = f"{source.relpath}::{MODULE_SCOPE}"

        def visit(node: ast.AST, owner: str, prefix: str, contexts: Tuple[str, ...]) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}"
                own_id = f"{source.relpath}::{qualname}"
                if own_id not in self.graph.functions:  # defs in odd spots
                    own_id = owner
                    own_prefix = prefix
                else:
                    own_prefix = f"{qualname}."
                for decorator in node.decorator_list:
                    visit(decorator, own_id, own_prefix, ())
                for default in [*node.args.defaults, *node.args.kw_defaults]:
                    if default is not None:
                        visit(default, owner, prefix, contexts)
                for stmt in node.body:
                    visit(stmt, own_id, own_prefix, ())
                return
            if isinstance(node, ast.ClassDef):
                for decorator in node.decorator_list:
                    visit(decorator, owner, prefix, contexts)
                for stmt in node.body:
                    visit(stmt, owner, f"{prefix}{node.name}.", contexts)
                return
            if isinstance(node, ast.If) and _is_type_checking_test(node.test):
                for stmt in node.orelse:
                    visit(stmt, owner, prefix, contexts)
                return
            if isinstance(node, (ast.With, ast.AsyncWith)):
                entered = contexts + tuple(
                    text
                    for item in node.items
                    if (
                        text := chain_text(
                            item.context_expr.func
                            if isinstance(item.context_expr, ast.Call)
                            else item.context_expr
                        )
                    )
                    is not None
                )
                for item in node.items:
                    visit(item.context_expr, owner, prefix, contexts)
                for stmt in node.body:
                    visit(stmt, owner, prefix, entered)
                return
            if isinstance(node, ast.Call):
                self._scope_calls.setdefault(owner, []).append((node, contexts))
            for child in ast.iter_child_nodes(node):
                visit(child, owner, prefix, contexts)

        for stmt in source.tree.body:
            visit(stmt, module_id, "", ())

    # -- per-scope local environment ------------------------------------

    def _scope_locals(self, source: "SourceFile", info: FunctionInfo) -> Dict[str, object]:
        scope = info.node
        is_function = isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef))
        return {
            "types": self._local_types(source, scope) if is_function else {},
            "defs": {
                stmt.name
                for stmt in getattr(scope, "body", ())
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if is_function
            else set(),
            "assigned": self._assigned_names(scope) if is_function else set(),
        }

    @staticmethod
    def _assigned_names(func: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, ast.Name):
                            names.add(leaf.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for leaf in ast.walk(node.target):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
            elif isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
                names.add(node.target.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        for leaf in ast.walk(item.optional_vars):
                            if isinstance(leaf, ast.Name):
                                names.add(leaf.id)
        return names

    def _local_types(
        self, source: "SourceFile", func: ast.AST
    ) -> Dict[str, Tuple[str, str]]:
        """Locals (and annotated params) with exactly one inferred class."""
        types: Dict[str, Tuple[str, str]] = {}
        poisoned: Set[str] = set()
        args = getattr(func, "args", None)
        if args is not None:
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if arg.annotation is not None:
                    typed = self._annotation_class(source, arg.annotation)
                    if typed is not None:
                        types[arg.arg] = typed
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                typed = self._constructed_class(source, node.value)
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if typed is None:
                        poisoned.add(target.id)
                    elif types.setdefault(target.id, typed) != typed:
                        poisoned.add(target.id)
            elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
                poisoned.add(node.target.id)
        return {name: typed for name, typed in types.items() if name not in poisoned}

    def _annotation_class(
        self, source: "SourceFile", annotation: ast.expr
    ) -> Optional[Tuple[str, str]]:
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        chain = chain_text(annotation)
        if chain is None:
            return None
        # Annotation-only imports count here: a parameter annotated with a
        # TYPE_CHECKING-imported class still types the receiver.
        root, _, rest = chain.partition(".")
        origin = source.symbols.imports.get(
            root, source.symbols.type_checking_imports.get(root, root)
        )
        dotted = f"{origin}.{rest}" if rest else origin
        module, _, name = dotted.rpartition(".")
        if module and (module, name) in self.graph.classes:
            return module, name
        own_module = module_name(source.relpath, self.src_root)
        if not rest and (own_module, chain) in self.graph.classes:
            return own_module, chain
        return None

    # -- a single call ---------------------------------------------------

    def _resolve_call(
        self,
        source: "SourceFile",
        module: str,
        info: FunctionInfo,
        node: ast.Call,
        contexts: Tuple[str, ...],
        locals_view: Dict[str, object],
    ) -> None:
        graph = self.graph
        local_types: Dict[str, Tuple[str, str]] = locals_view["types"]  # type: ignore[assignment]
        local_defs: Set[str] = locals_view["defs"]  # type: ignore[assignment]
        local_assigned: Set[str] = locals_view["assigned"]  # type: ignore[assignment]
        func = node.func
        chain = chain_text(func)
        target_text = chain or type(func).__name__

        def record(callee: Optional[str], reason: Optional[str] = None) -> None:
            site = CallSite(
                caller=info.id,
                callee=callee,
                node=node,
                target_text=target_text,
                reason=reason,
                lock_contexts=contexts,
            )
            graph.calls.append(site)
            graph.out_edges.setdefault(info.id, []).append(site)
            if callee is not None:
                graph.in_edges.setdefault(callee, []).append(site)
            else:
                graph.unresolved.append(site)

        if isinstance(func, ast.Call):
            inner = chain_text(func.func)
            record(
                None,
                reason="dynamic getattr lookup"
                if inner == "getattr"
                else "call on a call result",
            )
            return
        if isinstance(func, ast.Lambda):
            record(None, reason="immediate lambda call")
            return
        if chain is None:
            record(None, reason="callee is not a name/attribute chain")
            return

        parts = chain.split(".")
        root, attrs = parts[0], parts[1:]
        resolved_root = source.symbols.imports.get(root, root)
        dotted = ".".join([resolved_root, *attrs])
        # ``functools.partial(f, ...)`` never calls ``f`` here, and whoever
        # finally invokes the partial is invisible statically: document the
        # application as unresolved instead of inventing (or dropping) edges.
        if dotted in _PARTIAL_QUALNAMES and root not in local_assigned:
            record(None, reason="partial application: target called later, elsewhere")
            return
        if dotted == "getattr":
            record(None, reason="dynamic getattr lookup")
            return

        if not attrs:
            if root in local_defs:
                callee = f"{source.relpath}::{info.qualname}.{root}"
                if callee in graph.functions:
                    record(callee)
                else:  # pragma: no cover - defs are declared from the body
                    record(None, reason="nested def not declared")
                return
            if root in local_assigned and root not in source.symbols.imports:
                record(None, reason="callee held in a local variable (alias)")
                return
            if root in source.symbols.imports:
                self._record_dotted(record, source.symbols.imports[root], [])
                return
            callee = f"{source.relpath}::{root}"
            if callee in graph.functions:
                record(callee)
                return
            if (module, root) in graph.classes:
                self._record_constructor(record, module, root)
                return
            record(None, reason="builtin or external callee")
            return

        if root == "self" and info.class_name is not None:
            decl = graph.classes.get((module, info.class_name))
            if decl is None:  # pragma: no cover - enclosing class is declared
                record(None, reason="enclosing class not declared")
                return
            if len(attrs) == 1:
                callee = graph.resolve_method(decl, attrs[0])
                record(
                    callee,
                    None if callee else "method not found on class or project bases",
                )
                return
            typed = decl.attr_types.get(attrs[0])
            if typed is not None and len(attrs) == 2:
                self._record_method(record, typed, attrs[1])
                return
            record(None, reason="untyped instance attribute receiver")
            return

        if root in local_types:
            if len(attrs) == 1:
                self._record_method(record, local_types[root], attrs[0])
            else:
                record(None, reason="attribute chain through a typed local")
            return

        if root in local_assigned and root not in source.symbols.imports:
            record(None, reason="untyped local receiver")
            return

        if root in source.symbols.imports:
            self._record_dotted(record, source.symbols.imports[root], attrs)
            return

        if (module, root) in graph.classes and len(attrs) == 1:
            callee = graph.resolve_method(graph.classes[(module, root)], attrs[0])
            record(callee, None if callee else "method not found on class")
            return

        module_attrs = graph.module_attr_types.get(module, {})
        if root in module_attrs and len(attrs) == 1:
            self._record_method(record, module_attrs[root], attrs[0])
            return

        record(None, reason="unknown receiver type")

    def _record_method(self, record, typed: Tuple[str, str], method: str) -> None:
        decl = self.graph.classes.get(typed)
        if decl is None:  # pragma: no cover - inferred types come from classes
            record(None, reason="receiver class not declared")
            return
        callee = self.graph.resolve_method(decl, method)
        record(callee, None if callee else "method not found on inferred receiver class")

    def _record_constructor(self, record, module: str, class_name: str) -> None:
        decl = self.graph.resolve_class(module, class_name)
        if decl is None:
            record(None, reason="constructor of undeclared class")
            return
        callee = self.graph.resolve_method(decl, "__init__")
        record(callee, None if callee else "constructor without a project __init__")

    def _record_dotted(self, record, origin: str, attrs: List[str]) -> None:
        """Resolve ``origin`` (a dotted import target) plus trailing *attrs*."""
        graph = self.graph
        parts = origin.split(".") + attrs
        # Longest known module prefix wins; the remainder resolves inside it.
        for split in range(len(parts), 0, -1):
            candidate = ".".join(parts[:split])
            if candidate not in graph.modules:
                continue
            remainder = parts[split:]
            relpath = graph.modules[candidate]
            if not remainder:
                record(None, reason="module object called")
                return
            if len(remainder) == 1:
                name = remainder[0]
                callee = f"{relpath}::{name}"
                if callee in graph.functions:
                    record(callee)
                    return
                if (candidate, name) in graph.classes:
                    self._record_constructor(record, candidate, name)
                    return
                re_export = graph.module_imports.get(candidate, {}).get(name)
                if re_export is not None:
                    self._record_dotted(record, re_export, [])
                    return
                record(None, reason=f"no function/class {name!r} in {candidate}")
                return
            if len(remainder) == 2:
                class_name, method = remainder
                decl = graph.resolve_class(candidate, class_name)
                if decl is not None:
                    callee = graph.resolve_method(decl, method)
                    record(callee, None if callee else "method not found on class")
                    return
                typed = graph.module_attr_types.get(candidate, {}).get(class_name)
                if typed is not None:
                    self._record_method(record, typed, method)
                    return
                record(None, reason=f"no class/instance {class_name!r} in {candidate}")
                return
            record(None, reason="attribute chain too deep to resolve")
            return
        record(None, reason="external module")


def build_callgraph(project: "Project") -> CallGraph:
    """Construct the resolved call graph over every parsed in-scope file."""
    return _Builder(project).build()
