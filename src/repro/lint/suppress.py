"""Inline suppression comments.

A finding is silenced by a justified comment on its own line::

    backoff = random.random()  # repro-lint: disable=D101  calibration shim

or for a whole file (anywhere in the file, conventionally near the top)::

    # repro-lint: disable-file=D103

Multiple ids are comma-separated; ``disable=all`` silences every rule on
that line.  Suppressions are parsed from raw source lines (not the AST) so
they keep working next to code the AST pass cannot anchor precisely.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from repro.lint.framework import Finding

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+?)(?=\s\s|\s*#|\s*$)"
)


@dataclass
class SuppressionIndex:
    """Per-line and per-file suppressions extracted from one source file."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    file_wide: Set[str] = field(default_factory=set)

    def suppresses(self, finding: Finding) -> bool:
        for rules in (self.file_wide, self.by_line.get(finding.line, ())):
            if "ALL" in rules or finding.rule.upper() in rules:
                return True
        return False


def scan_suppressions(lines: Sequence[str]) -> SuppressionIndex:
    """Extract every ``# repro-lint: disable`` directive from *lines*."""
    index = SuppressionIndex()
    for lineno, line in enumerate(lines, start=1):
        if "repro-lint" not in line:
            continue
        for match in _DIRECTIVE.finditer(line):
            rules = {
                token.strip().upper()
                for token in match.group("rules").split(",")
                if token.strip()
            }
            if not rules:
                continue
            if match.group("kind") == "disable-file":
                index.file_wide |= rules
            else:
                index.by_line.setdefault(lineno, set()).update(rules)
    return index


def apply_suppressions(
    findings: Sequence[Finding],
    indexes: Dict[str, SuppressionIndex],
) -> tuple[List[Finding], List[Finding]]:
    """Split *findings* into (kept, suppressed) using per-path indexes."""
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        index = indexes.get(finding.path)
        if index is not None and index.suppresses(finding):
            suppressed.append(finding)
        else:
            kept.append(finding)
    return kept, suppressed
