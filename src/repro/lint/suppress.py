"""Inline suppression comments.

A finding is silenced by a justified comment on its own line::

    backoff = random.random()  # repro-lint: disable=D101  calibration shim

or for a whole file (anywhere in the file, conventionally near the top)::

    # repro-lint: disable-file=D103

Multiple ids are comma-separated; ``disable=all`` silences every rule on
that line.  Suppressions are parsed from raw source lines (not the AST) so
they keep working next to code the AST pass cannot anchor precisely.

Every directive is kept as a :class:`Directive` record (line, kind, ids) so
the engine can track which ones actually silenced something — a directive
whose rule ids never match any finding is itself flagged (W001): stale
suppressions are how real violations sneak back in unread.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.lint.framework import Finding

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+?)(?=\s\s|\s*#|\s*$)"
)


@dataclass(frozen=True)
class Directive:
    """One ``# repro-lint: disable`` comment as written in the source."""

    lineno: int
    kind: str  # "disable" | "disable-file"
    rules: FrozenSet[str]  # upper-cased ids, possibly {"ALL"}

    @property
    def file_wide(self) -> bool:
        return self.kind == "disable-file"


@dataclass
class SuppressionIndex:
    """Per-line and per-file suppressions extracted from one source file."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    file_wide: Set[str] = field(default_factory=set)
    directives: List[Directive] = field(default_factory=list)

    def suppresses(self, finding: Finding) -> bool:
        for rules in (self.file_wide, self.by_line.get(finding.line, ())):
            if "ALL" in rules or finding.rule.upper() in rules:
                return True
        return False

    def matching(self, finding: Finding) -> List[Directive]:
        """Every directive that silences *finding* (usually one)."""
        rule = finding.rule.upper()
        return [
            directive
            for directive in self.directives
            if (directive.file_wide or directive.lineno == finding.line)
            and ("ALL" in directive.rules or rule in directive.rules)
        ]


def _comment_tokens(lines: Sequence[str]) -> List[Tuple[int, str]]:
    """``(lineno, comment_text)`` for every real comment token.

    Tokenizing (rather than regexing raw lines) keeps directives quoted
    inside docstrings and string literals — documentation, test snippets —
    from being honoured as live suppressions or flagged as stale ones.
    Files the tokenizer rejects fall back to the line-based scan: a
    directive in a broken file should still suppress what it can.
    """
    text = "\n".join(lines) + "\n" if lines else ""
    comments: List[Tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return [
            (lineno, line)
            for lineno, line in enumerate(lines, start=1)
            if "#" in line
        ]
    return comments


def scan_suppressions(lines: Sequence[str]) -> SuppressionIndex:
    """Extract every ``# repro-lint: disable`` directive from *lines*."""
    index = SuppressionIndex()
    for lineno, line in _comment_tokens(lines):
        if "repro-lint" not in line:
            continue
        for match in _DIRECTIVE.finditer(line):
            rules = {
                token.strip().upper()
                for token in match.group("rules").split(",")
                if token.strip()
            }
            if not rules:
                continue
            kind = match.group("kind")
            index.directives.append(
                Directive(lineno=lineno, kind=kind, rules=frozenset(rules))
            )
            if kind == "disable-file":
                index.file_wide |= rules
            else:
                index.by_line.setdefault(lineno, set()).update(rules)
    return index


def apply_suppressions(
    findings: Sequence[Finding],
    indexes: Dict[str, SuppressionIndex],
) -> Tuple[List[Finding], List[Finding]]:
    """Split *findings* into (kept, suppressed) using per-path indexes."""
    kept, suppressed, _used = apply_suppressions_tracked(findings, indexes)
    return kept, suppressed


def apply_suppressions_tracked(
    findings: Sequence[Finding],
    indexes: Dict[str, SuppressionIndex],
) -> Tuple[List[Finding], List[Finding], Dict[str, Set[Tuple[Directive, str]]]]:
    """Like :func:`apply_suppressions`, plus which directives earned their keep.

    The third element maps path -> set of ``(directive, rule_id)`` pairs
    that silenced at least one finding; the W001 pass holds every directive
    id against it.
    """
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    used: Dict[str, Set[Tuple[Directive, str]]] = {}
    for finding in findings:
        index = indexes.get(finding.path)
        matches = index.matching(finding) if index is not None else []
        if matches:
            suppressed.append(finding)
            rule = finding.rule.upper()
            for directive in matches:
                hit = rule if rule in directive.rules else "ALL"
                used.setdefault(finding.path, set()).add((directive, hit))
        else:
            kept.append(finding)
    return kept, suppressed, used
