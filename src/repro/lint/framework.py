"""Rule framework of the invariant linter.

Rules are pluggable the same way scenario components are
(:mod:`repro.build.registry`): each rule class registers itself under a
stable id via the :func:`rule` decorator, and the engine instantiates every
selected registration per run::

    from repro.lint.framework import FileRule, rule

    @rule("D999", name="no-foo", description="forbid foo() in sim layers")
    class NoFooRule(FileRule):
        def check_file(self, source, project):
            ...
            yield self.finding(source, node, "call to foo()")

Two base classes fix the calling convention:

* :class:`FileRule` — visited once per parsed source file; sees the shared
  per-file symbol pass (:class:`repro.lint.symbols.SymbolTable`) through
  ``source.symbols``.
* :class:`ProjectRule` — visited once per run with the whole
  :class:`~repro.lint.engine.Project`; used by cross-module policy rules
  that have to correlate files (e.g. "every schema constant is referenced
  from a test").
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Iterator, List, Optional, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    import ast

    from repro.lint.callgraph import CallGraph
    from repro.lint.engine import Project, SourceFile


class Severity(enum.Enum):
    """How a finding gates the run: errors fail the build, notes do not."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    Attributes:
        rule: Rule id (e.g. ``"D101"``).
        severity: Gate level of the owning rule.
        path: Project-root-relative POSIX path of the file.
        line: 1-based line of the violation (0 for whole-file findings).
        col: 0-based column.
        message: Human-readable description of the violation.
        line_text: The stripped source line, recorded so baseline
            fingerprints survive pure line-number drift.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    line_text: str = ""

    @property
    def fingerprint(self) -> str:
        """Content-addressed identity used by baseline files.

        Deliberately excludes the line *number*: inserting an unrelated line
        above a grandfathered finding must not turn it into a "new" one.
        """
        material = "\0".join((self.rule, self.path, self.line_text, self.message))
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


class Rule:
    """Base class of every lint rule; concrete rules subclass a flavour below.

    The registry stamps ``id``/``name``/``description``/``severity`` onto the
    class at registration time, so rule bodies only implement the check.
    """

    id: str = ""
    name: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR
    #: Whether the rule consumes the project call graph.  The engine only
    #: builds the graph when at least one selected rule sets this, so
    #: per-file runs (``--select D``) stay one-pass cheap.
    needs_graph: bool = False

    def check(self, project: "Project") -> Iterator[Finding]:
        raise NotImplementedError

    # Helper shared by all rules: a finding anchored at an AST node.
    def finding(
        self,
        source: "SourceFile",
        node: Optional["ast.AST"],
        message: str,
    ) -> Finding:
        line = getattr(node, "lineno", 0) if node is not None else 0
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=source.relpath,
            line=line,
            col=col,
            message=message,
            line_text=source.line_text(line),
        )


class FileRule(Rule):
    """A rule checked independently against every parsed file."""

    def check(self, project: "Project") -> Iterator[Finding]:
        for source in project.files:
            yield from self.check_file(source, project)

    def check_file(self, source: "SourceFile", project: "Project") -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that correlates the whole project (cross-module policies)."""


class GraphRule(ProjectRule):
    """A project rule driven by the resolved call graph (phase two).

    The engine runs these after every file rule, handing over the memoised
    :class:`~repro.lint.callgraph.CallGraph`; all graph rules in a run share
    one construction.
    """

    needs_graph = True

    def check(self, project: "Project") -> Iterator[Finding]:
        yield from self.check_graph(project, project.callgraph())

    def check_graph(
        self, project: "Project", graph: "CallGraph"
    ) -> Iterator[Finding]:
        raise NotImplementedError


class EngineRule(Rule):
    """Registration stub for findings the engine itself emits (E/W ids).

    Crash robustness (E001/E002) and suppression hygiene (W001) are engine
    behaviour, not AST visits — but registering them keeps every emittable
    id visible in ``--list-rules`` and addressable by ``--select``/
    ``--ignore``; the engine consults the selected set before emitting.
    """

    def check(self, project: "Project") -> Iterator[Finding]:
        return iter(())


@dataclass(frozen=True)
class RuleRegistration:
    """One registered rule: its id, gate level and implementing class."""

    id: str
    name: str
    description: str
    severity: Severity
    rule_class: Type[Rule]


class DuplicateRuleError(ValueError):
    """Two rules registered under the same id."""


class RuleRegistry:
    """Maps rule ids to registrations; mirrors ``build.ComponentRegistry``.

    The built-in families register themselves into the module-level default
    registry on import; tests construct private registries to exercise
    throwaway rules without leaking global state.
    """

    def __init__(self) -> None:
        self._rules: Dict[str, RuleRegistration] = {}

    def add(
        self,
        rule_id: str,
        rule_class: Type[Rule],
        name: str = "",
        description: str = "",
        severity: Severity = Severity.ERROR,
        replace: bool = False,
    ) -> RuleRegistration:
        rule_id = rule_id.strip().upper()
        if not replace and rule_id in self._rules:
            raise DuplicateRuleError(
                f"rule id {rule_id!r} is already registered "
                f"({self._rules[rule_id].rule_class.__name__})"
            )
        registration = RuleRegistration(
            id=rule_id,
            name=name or rule_class.__name__,
            description=description,
            severity=severity,
            rule_class=rule_class,
        )
        self._rules[rule_id] = registration
        # Stamp the identity onto the class so instances self-describe.
        rule_class.id = rule_id
        rule_class.name = registration.name
        rule_class.description = description
        rule_class.severity = severity
        return registration

    def rule(
        self,
        rule_id: str,
        name: str = "",
        description: str = "",
        severity: Severity = Severity.ERROR,
        replace: bool = False,
    ) -> Callable[[Type[Rule]], Type[Rule]]:
        """Decorator form of :meth:`add` (the normal registration spelling)."""

        def decorator(rule_class: Type[Rule]) -> Type[Rule]:
            self.add(
                rule_id,
                rule_class,
                name=name,
                description=description,
                severity=severity,
                replace=replace,
            )
            return rule_class

        return decorator

    def available(self) -> List[str]:
        return sorted(self._rules)

    def lookup(self, rule_id: str) -> RuleRegistration:
        rule_id = rule_id.strip().upper()
        if rule_id not in self._rules:
            raise KeyError(f"unknown lint rule {rule_id!r}; known: {', '.join(self.available())}")
        return self._rules[rule_id]

    def select(
        self,
        select: Iterable[str] = (),
        ignore: Iterable[str] = (),
    ) -> List[RuleRegistration]:
        """Registrations matching the select/ignore prefixes.

        ``select``/``ignore`` entries are id *prefixes* (``"D"`` selects the
        whole determinism family, ``"D103"`` one rule); empty ``select``
        means every registered rule.
        """
        chosen = []
        select = tuple(s.strip().upper() for s in select if s.strip())
        ignore = tuple(s.strip().upper() for s in ignore if s.strip())
        for rule_id in self.available():
            if select and not any(rule_id.startswith(prefix) for prefix in select):
                continue
            if any(rule_id.startswith(prefix) for prefix in ignore):
                continue
            chosen.append(self._rules[rule_id])
        return chosen

    def instantiate(
        self,
        select: Iterable[str] = (),
        ignore: Iterable[str] = (),
    ) -> List[Rule]:
        return [registration.rule_class() for registration in self.select(select, ignore)]


#: Process-wide registry the built-in rule families register into.  Created
#: eagerly so decorator-time registration and :func:`default_registry` agree
#: regardless of which module a caller imports first.
_DEFAULT_REGISTRY = RuleRegistry()


def default_registry() -> RuleRegistry:
    """The registry with every built-in rule family loaded."""
    # Importing is idempotent (sys.modules), so this is safe to call often.
    from repro.lint import (  # noqa: F401
        rules_determinism,
        rules_engine,
        rules_locks,
        rules_parity,
        rules_policy,
        rules_robustness,
        rules_slots,
        rules_taint,
    )

    return _DEFAULT_REGISTRY


def rule(
    rule_id: str,
    name: str = "",
    description: str = "",
    severity: Severity = Severity.ERROR,
    replace: bool = False,
) -> Callable[[Type[Rule]], Type[Rule]]:
    """Register a rule into the default registry (decorator)."""
    return _DEFAULT_REGISTRY.rule(
        rule_id, name=name, description=description, severity=severity, replace=replace
    )
