"""Lint configuration: defaults, pyproject block, CLI overrides.

The knobs live in ``[tool.repro-lint]`` of ``pyproject.toml``::

    [tool.repro-lint]
    paths = ["src", "tests", "benchmarks"]
    select = []          # rule-id prefixes; empty = all rules
    ignore = []
    baseline = ""        # path of a committed baseline file, if any
    exclude = ["**/_vendored/**"]

Python 3.10 (the oldest supported interpreter) has no ``tomllib``, so a
minimal fallback parser handles exactly the flat table shape above; on 3.11+
the stdlib parser is used.
"""

from __future__ import annotations

import ast as _ast
import re
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

#: Layers of ``src/repro`` whose code runs *inside* a simulation and is
#: therefore covered by the determinism (D) rules.  ``experiments``/``perf``/
#: ``results`` and the CLI orchestrate around the simulation (wall-clock
#: timing there is measurement, not simulated behaviour) and are exempt.
SIM_LAYERS: Tuple[str, ...] = (
    "sim",
    "core",
    "mac",
    "radio",
    "routing",
    "protocols",
    "topology",
    "workload",
    "mobility",
    "faults",
)

#: The one module allowed to touch the stdlib ``random`` machinery: the
#: named-stream registry every stochastic component draws through.
RNG_MODULE_SUFFIX = "repro/sim/rng.py"

#: Hot-path classes that must keep ``__slots__`` (explicitly or via
#: ``@dataclass(slots=True)``) — each earned its slots in a measured perf PR
#: and silently losing them would not fail any functional test.
SLOTS_CLASSES: Tuple[str, ...] = (
    "Event",
    "TransmissionTiming",
    "TransmissionCost",
    "Packet",
    "DataDescriptor",
)

#: The crash-safe append-only store module: every write reachable there must
#: be dominated by the store lock (L501).
STORE_MODULE_SUFFIX = "repro/results/store.py"

#: ``with`` expressions that count as holding the store lock, and the lock
#: class itself (whose own methods are exempt — acquiring the lock cannot
#: require already holding it).
STORE_LOCK_NAMES: Tuple[str, ...] = ("self._lock", "_StoreLock")
STORE_LOCK_CLASSES: Tuple[str, ...] = ("_StoreLock",)

#: Store handle classes a multiprocessing worker must not capture (L502).
STORE_CLASSES: Tuple[str, ...] = ("RunStore",)

#: Where the oracle-parity rules look for differential tests (P602).
PROTOCOLS_TESTS_ROOT = "tests/protocols"

#: Modules holding worker entry points and supervisor retry paths — the
#: fault-tolerance layer where a swallowed exception silently loses a job
#: instead of producing a JobFailure (R701).
WORKER_MODULE_SUFFIXES: Tuple[str, ...] = (
    "repro/experiments/supervisor.py",
    "repro/experiments/executor.py",
)


@dataclass(frozen=True)
class LintConfig:
    """Resolved configuration of one lint run."""

    project_root: Path
    paths: Tuple[str, ...] = ("src",)
    select: Tuple[str, ...] = ()
    ignore: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()
    baseline: Optional[str] = None
    sim_layers: Tuple[str, ...] = SIM_LAYERS
    rng_module_suffix: str = RNG_MODULE_SUFFIX
    slots_classes: Tuple[str, ...] = SLOTS_CLASSES
    harness_path: str = "tests/protocols/harness.py"
    src_root: str = "src"
    tests_root: str = "tests"
    store_module_suffix: str = STORE_MODULE_SUFFIX
    store_lock_names: Tuple[str, ...] = STORE_LOCK_NAMES
    store_lock_classes: Tuple[str, ...] = STORE_LOCK_CLASSES
    store_classes: Tuple[str, ...] = STORE_CLASSES
    protocols_tests_root: str = PROTOCOLS_TESTS_ROOT
    worker_module_suffixes: Tuple[str, ...] = WORKER_MODULE_SUFFIXES
    #: Attach the resolved call graph to the report (``--graph-debug``).
    graph_debug: bool = False

    def baseline_path(self) -> Optional[Path]:
        if not self.baseline:
            return None
        path = Path(self.baseline)
        return path if path.is_absolute() else self.project_root / path


def find_project_root(start: Path) -> Path:
    """Nearest ancestor of *start* holding a ``pyproject.toml`` (else *start*)."""
    start = start.resolve()
    candidates = [start] if start.is_dir() else [start.parent]
    candidates.extend(candidates[0].parents)
    for candidate in candidates:
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return candidates[0]


def _parse_with_tomllib(text: str) -> Optional[Dict[str, object]]:
    try:
        import tomllib
    except ModuleNotFoundError:  # Python 3.10
        return None
    data = tomllib.loads(text)
    tool = data.get("tool", {})
    block = tool.get("repro-lint", {}) if isinstance(tool, dict) else {}
    return block if isinstance(block, dict) else {}


_SECTION = re.compile(r"^\s*\[(?P<name>[^\]]+)\]\s*$")
_KEY_VALUE = re.compile(r"^\s*(?P<key>[A-Za-z0-9_-]+)\s*=\s*(?P<value>.+?)\s*$")


def _parse_minimal(text: str) -> Dict[str, object]:
    """Flat-table fallback for interpreters without ``tomllib``.

    Understands only what the documented config shape needs: one
    ``[tool.repro-lint]`` section of ``key = <string|bool|list-of-strings>``
    lines.  TOML string/list literals happen to be Python literals, so
    ``ast.literal_eval`` does the value parsing.
    """
    block: Dict[str, object] = {}
    in_section = False
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0] if not raw_line.lstrip().startswith("#") else ""
        if not line.strip():
            continue
        section = _SECTION.match(line)
        if section:
            in_section = section.group("name").strip() == "tool.repro-lint"
            continue
        if not in_section:
            continue
        pair = _KEY_VALUE.match(line)
        if not pair:
            continue
        value_text = pair.group("value")
        if value_text in ("true", "false"):
            value_text = value_text.capitalize()
        try:
            block[pair.group("key")] = _ast.literal_eval(value_text)
        except (ValueError, SyntaxError):
            continue
    return block


def load_pyproject_block(project_root: Path) -> Dict[str, object]:
    """The raw ``[tool.repro-lint]`` table of the project, or ``{}``."""
    pyproject = project_root / "pyproject.toml"
    if not pyproject.is_file():
        return {}
    text = pyproject.read_text(encoding="utf-8")
    parsed = _parse_with_tomllib(text)
    if parsed is None:
        parsed = _parse_minimal(text)
    return parsed


def _string_tuple(value: object) -> Tuple[str, ...]:
    if isinstance(value, str):
        return (value,) if value else ()
    if isinstance(value, (list, tuple)):
        return tuple(str(item) for item in value)
    return ()


def load_config(
    project_root: Path,
    paths: Sequence[str] = (),
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
    baseline: Optional[str] = None,
) -> LintConfig:
    """Defaults <- pyproject ``[tool.repro-lint]`` <- explicit arguments."""
    config = LintConfig(project_root=project_root.resolve())
    block = load_pyproject_block(config.project_root)
    updates: Dict[str, object] = {}
    if "paths" in block:
        updates["paths"] = _string_tuple(block["paths"]) or config.paths
    if "select" in block:
        updates["select"] = _string_tuple(block["select"])
    if "ignore" in block:
        updates["ignore"] = _string_tuple(block["ignore"])
    if "exclude" in block:
        updates["exclude"] = _string_tuple(block["exclude"])
    if "baseline" in block and block["baseline"]:
        updates["baseline"] = str(block["baseline"])
    if "slots-classes" in block:
        updates["slots_classes"] = _string_tuple(block["slots-classes"])
    if "harness-path" in block:
        updates["harness_path"] = str(block["harness-path"])
    if updates:
        config = replace(config, **updates)
    # Explicit (CLI) arguments override the file.
    overrides: Dict[str, object] = {}
    if paths:
        overrides["paths"] = tuple(paths)
    if select:
        overrides["select"] = tuple(select)
    if ignore:
        overrides["ignore"] = tuple(ignore)
    if baseline is not None:
        overrides["baseline"] = baseline
    if overrides:
        config = replace(config, **overrides)
    return config
