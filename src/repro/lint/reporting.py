"""Rendering a :class:`~repro.lint.engine.LintReport` as text or JSON."""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.engine import LintReport

#: Bump when the ``--json`` payload layout changes incompatibly (enforced
#: test reference via the C-rules, like every schema constant).
LINT_REPORT_SCHEMA_VERSION = 1


def report_to_dict(report: LintReport) -> Dict[str, object]:
    """The machine-readable payload printed by ``repro lint --json``."""
    return {
        "lint_report_schema_version": LINT_REPORT_SCHEMA_VERSION,
        "files_checked": report.files_checked,
        "rules_run": list(report.rules_run),
        "findings": [finding.to_dict() for finding in report.findings],
        "counts": {
            "findings": len(report.findings),
            "suppressed": len(report.suppressed),
            "baselined": len(report.baselined),
        },
        "errors": list(report.errors),
        "exit_code": report.exit_code,
        "graph_built": report.graph_built,
        # Only attached under --graph-debug; absent keys keep the payload
        # layout stable for consumers that don't ask for the dump.
        **({"callgraph": report.graph_dump} if report.graph_dump is not None else {}),
    }


def render_json(report: LintReport) -> str:
    return json.dumps(report_to_dict(report), indent=1, sort_keys=True)


def render_text(report: LintReport) -> List[str]:
    """Human-readable report: one line per finding plus a summary line."""
    lines: List[str] = []
    for error in report.errors:
        lines.append(f"error: {error}")
    for finding in report.findings:
        lines.append(finding.render())
    summary = (
        f"{len(report.findings)} finding(s) in {report.files_checked} file(s)"
    )
    extras = []
    if report.suppressed:
        extras.append(f"{len(report.suppressed)} suppressed inline")
    if report.baselined:
        extras.append(f"{len(report.baselined)} grandfathered by baseline")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    if report.graph_dump is not None:
        lines.extend(render_graph_debug(report.graph_dump))
    return lines


def render_graph_debug(dump: Dict[str, object]) -> List[str]:
    """Text form of the ``--graph-debug`` dump: counts, edges, unresolved."""
    counts = dump.get("counts", {})
    lines = [
        "callgraph: {functions} function(s), {resolved_edges} resolved "
        "edge(s), {unresolved_calls} unresolved call(s)".format(**counts)
    ]
    for edge in dump.get("edges", []):
        locks = f"  [locks: {', '.join(edge['locks'])}]" if edge["locks"] else ""
        lines.append(f"  {edge['caller']}:{edge['line']} -> {edge['callee']}{locks}")
    for call in dump.get("unresolved", []):
        lines.append(
            f"  {call['caller']}:{call['line']} ~> {call['target']} "
            f"(unresolved: {call['reason']})"
        )
    return lines
