"""Baseline files: committed grandfathered findings.

A baseline is a JSON document mapping finding fingerprints to a readable
summary of what was grandfathered::

    {
      "lint_baseline_schema_version": 1,
      "findings": {
        "1f2e3d4c5b6a7988": "src/repro/foo.py: D101 direct use of 'random'"
      }
    }

Fingerprints hash the rule id, path, message and the *text* of the offending
line (not its number), so unrelated edits above a grandfathered finding do
not resurrect it, while any edit to the offending line itself does — exactly
the "you touched it, you fix it" contract.  The policy for this repository
is an **empty baseline at HEAD**: the file format exists for mid-migration
states (adopting a new rule over a large tree), not as a parking lot.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Sequence, Set

from repro.lint.framework import Finding

#: Bump when the baseline file layout changes incompatibly (same policy as
#: the other ``*_SCHEMA_VERSION`` constants; the C-rules enforce that a test
#: references this name).
LINT_BASELINE_SCHEMA_VERSION = 1

_SCHEMA_KEY = "lint_baseline_schema_version"


class BaselineError(ValueError):
    """The baseline file is unreadable or has an unsupported layout."""


def load_baseline(path: Path) -> Set[str]:
    """The set of grandfathered fingerprints in *path* (empty if absent)."""
    if not path.is_file():
        return set()
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or _SCHEMA_KEY not in data:
        raise BaselineError(f"baseline {path} is missing {_SCHEMA_KEY!r}")
    version = data[_SCHEMA_KEY]
    if version != LINT_BASELINE_SCHEMA_VERSION:
        raise BaselineError(
            f"baseline {path} has schema version {version!r}; "
            f"this build reads version {LINT_BASELINE_SCHEMA_VERSION}"
        )
    findings = data.get("findings", {})
    if not isinstance(findings, dict):
        raise BaselineError(f"baseline {path}: 'findings' must be an object")
    return set(findings)


def write_baseline(path: Path, findings: Sequence[Finding]) -> int:
    """Write *findings* as the new baseline; returns the entry count.

    Entries are keyed by fingerprint with a human-readable summary as the
    value, so baseline diffs review like code.
    """
    entries: Dict[str, str] = {}
    for finding in findings:
        entries[finding.fingerprint] = (
            f"{finding.path}: {finding.rule} {finding.message}"
        )
    payload = {
        _SCHEMA_KEY: LINT_BASELINE_SCHEMA_VERSION,
        "findings": dict(sorted(entries.items())),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8")
    return len(entries)
