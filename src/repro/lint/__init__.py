"""``repro.lint`` — the AST-based determinism & invariant linter.

The runtime guarantees this repository leans on (byte-identical metrics
across serial/parallel runs and fast-path/oracle pairs) are enforced
dynamically by the differential suites and digest pins — but a differential
suite takes minutes to say what a static check can say in milliseconds.
This package is that static check: a pluggable rule framework
(:mod:`repro.lint.framework`) over one shared per-file AST/symbol pass
(:mod:`repro.lint.symbols`), with three built-in rule families:

* **D-rules** (:mod:`repro.lint.rules_determinism`) — determinism hazards
  in the simulation layers: stdlib entropy, wall-clock reads, hash-ordered
  set iteration, ``id()``/``hash()`` ordering.
* **S-rules** (:mod:`repro.lint.rules_slots`) — declared hot-path classes
  must keep ``__slots__``.
* **C-rules** (:mod:`repro.lint.rules_policy`) — cross-module policy: the
  oracle's fast-path switches must resolve, and every ``*_SCHEMA_VERSION``
  constant must be pinned by a test.

On top of the per-file pass sits a project-wide analysis engine: a
resolved call graph (:mod:`repro.lint.callgraph`) with taint/reachability
and lock-dominance layers (:mod:`repro.lint.dataflow`), consumed by three
graph-driven families run as a second phase:

* **T-rules** (:mod:`repro.lint.rules_taint`) — cross-file entropy taint:
  sim-layer functions reaching stdlib entropy through call chains, raw
  ``random.Random`` values passed between functions.
* **L-rules** (:mod:`repro.lint.rules_locks`) — store lock discipline:
  writes in the results store dominated by the store lock, no store
  handles captured across multiprocessing forks.
* **P-rules** (:mod:`repro.lint.rules_parity`) — oracle parity: class
  twins swapped by ``oracle_mode()`` keep identical public signatures,
  every fast-path toggle is flipped under ``tests/protocols/``.

The engine itself emits **E/W findings**
(:mod:`repro.lint.rules_engine`): unparseable/unreadable files (E001/
E002) and stale suppression comments (W001).

Entry points: ``repro lint`` on the command line (``--changed`` for
git-diff-scoped pre-commit runs, ``--graph-debug`` to dump the graph),
:func:`run_lint` from code.  Findings are silenced per line with
``# repro-lint: disable=RULE`` plus a justification, or grandfathered in a
committed baseline file (:mod:`repro.lint.baseline`) during migrations.
"""

from repro.lint.baseline import (
    LINT_BASELINE_SCHEMA_VERSION,
    BaselineError,
    load_baseline,
    write_baseline,
)
from repro.lint.config import (
    SIM_LAYERS,
    SLOTS_CLASSES,
    LintConfig,
    find_project_root,
    load_config,
)
from repro.lint.callgraph import CallGraph, CallSite, FunctionInfo, build_callgraph
from repro.lint.changed import ChangedFilesError, scoped_changed_paths
from repro.lint.engine import LintReport, Project, SourceFile, parse_source, run_lint
from repro.lint.framework import (
    DuplicateRuleError,
    EngineRule,
    FileRule,
    Finding,
    GraphRule,
    ProjectRule,
    Rule,
    RuleRegistry,
    Severity,
    default_registry,
    rule,
)
from repro.lint.reporting import (
    LINT_REPORT_SCHEMA_VERSION,
    render_json,
    render_text,
    report_to_dict,
)

__all__ = [
    "BaselineError",
    "CallGraph",
    "CallSite",
    "ChangedFilesError",
    "DuplicateRuleError",
    "EngineRule",
    "FileRule",
    "Finding",
    "FunctionInfo",
    "GraphRule",
    "build_callgraph",
    "scoped_changed_paths",
    "LINT_BASELINE_SCHEMA_VERSION",
    "LINT_REPORT_SCHEMA_VERSION",
    "LintConfig",
    "LintReport",
    "Project",
    "ProjectRule",
    "Rule",
    "RuleRegistry",
    "SIM_LAYERS",
    "SLOTS_CLASSES",
    "Severity",
    "SourceFile",
    "default_registry",
    "find_project_root",
    "load_baseline",
    "load_config",
    "parse_source",
    "render_json",
    "render_text",
    "report_to_dict",
    "rule",
    "run_lint",
    "write_baseline",
]
