"""D-rules: determinism hazards inside the simulation layers.

The repository's headline contract — byte-identical metrics across
serial/parallel runs and fast-path/oracle pairs — only holds while the
simulation layers draw every random number through the seeded
:class:`repro.sim.rng.RandomStreams`, never read the wall clock, and never
let hash-randomised iteration order feed event scheduling or float
accumulation.  These rules make each hazard a static finding.

Scope: files whose ``repro`` package layer is one of
:data:`repro.lint.config.SIM_LAYERS`.  The orchestration layers
(``experiments``, ``perf``, ``results``, the CLI) time and label real-world
runs on purpose and are exempt, as is ``sim/rng.py`` itself — the single
module allowed to touch stdlib ``random``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint.engine import Project, SourceFile
from repro.lint.framework import FileRule, Finding, rule
from repro.lint.symbols import walk_runtime

#: Modules whose very import into a sim layer is a finding: every byte of
#: entropy must flow through the named-stream registry instead.
ENTROPY_MODULES = ("random", "secrets", "uuid")

#: Fully qualified callables that read ambient entropy.
ENTROPY_CALLS = ("os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4")

#: Fully qualified callables that read the wall clock.
WALLCLOCK_CALLS = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
)

#: Callables that consume an iterable order-insensitively; iterating a set
#: into these is safe (``min``/``max``/``sum`` of *ints* would be too, but
#: float accumulation is order-sensitive, so ``sum`` is not exempt).
_ORDER_IMPOSING = ("sorted", "min", "max", "len", "any", "all", "set", "frozenset")

#: Callables that materialise their argument *in iteration order*.
_ORDER_SENSITIVE_CONSUMERS = ("sum", "list", "tuple", "math.fsum", "enumerate")


def _in_scope(source: SourceFile, project: Project) -> bool:
    config = project.config
    if source.layer not in config.sim_layers:
        return False
    return not source.relpath.endswith(config.rng_module_suffix)


class _SimLayerRule(FileRule):
    """Shared scope filter for the D-family."""

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        if source.tree is None or not _in_scope(source, project):
            return
        yield from self.check_sim_file(source, project)

    def check_sim_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        raise NotImplementedError


@rule(
    "D101",
    name="direct-entropy",
    description=(
        "sim layers must draw randomness through sim/rng.py RandomStreams, "
        "never stdlib random/secrets/uuid/os.urandom directly"
    ),
)
class DirectEntropyRule(_SimLayerRule):
    def check_sim_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        for node in walk_runtime(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top in ENTROPY_MODULES:
                        yield self.finding(
                            source,
                            node,
                            f"direct import of {top!r} in a simulation layer; "
                            "draw through sim/rng.py RandomStreams",
                        )
            elif isinstance(node, ast.ImportFrom):
                top = (node.module or "").split(".")[0]
                if top in ENTROPY_MODULES:
                    yield self.finding(
                        source,
                        node,
                        f"direct import from {top!r} in a simulation layer; "
                        "draw through sim/rng.py RandomStreams",
                    )
            elif isinstance(node, ast.Call):
                qualname = source.symbols.qualname(node.func)
                if qualname in ENTROPY_CALLS:
                    yield self.finding(
                        source,
                        node,
                        f"call to {qualname}() reads ambient entropy; "
                        "derive values from the scenario seed instead",
                    )


@rule(
    "D102",
    name="wall-clock",
    description=(
        "sim layers must not read the wall clock (time.time, datetime.now, "
        "perf_counter); simulated time is Simulator.now"
    ),
)
class WallClockRule(_SimLayerRule):
    def check_sim_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        call_funcs: Set[int] = set()
        for node in walk_runtime(source.tree):
            if isinstance(node, ast.Call):
                call_funcs.add(id(node.func))
        for node in walk_runtime(source.tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                for alias in node.names:
                    origin = f"{module}.{alias.name}" if module else alias.name
                    if origin in WALLCLOCK_CALLS:
                        yield self.finding(
                            source,
                            node,
                            f"import of wall-clock reader {origin!r} in a "
                            "simulation layer",
                        )
            elif isinstance(node, (ast.Attribute, ast.Name)):
                if not isinstance(getattr(node, "ctx", None), ast.Load):
                    continue
                qualname = source.symbols.qualname(node)
                if qualname in WALLCLOCK_CALLS:
                    via = "call to" if id(node) in call_funcs else "reference to"
                    yield self.finding(
                        source,
                        node,
                        f"{via} wall-clock reader {qualname} in a simulation "
                        "layer; simulated time is Simulator.now",
                    )


def _call_name(node: ast.Call, source: SourceFile) -> Optional[str]:
    return source.symbols.qualname(node.func)


def _is_set_expr(node: ast.expr, source: SourceFile, set_names: Set[str]) -> bool:
    """Whether *node* is syntactically a set (hash-ordered iteration)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return _call_name(node, source) in ("set", "frozenset")
    if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        # Set algebra (| & -) of set expressions is still a set.
        return _is_set_expr(node.left, source, set_names) or _is_set_expr(
            node.right, source, set_names
        )
    return False


def _local_set_names(func: ast.AST, source: SourceFile) -> Set[str]:
    """Names assigned a set expression (and never anything else) in *func*."""
    assigned_set: Set[str] = set()
    assigned_other: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
            is_set = _is_set_expr(node.value, source, assigned_set)
            for target in targets:
                (assigned_set if is_set else assigned_other).add(target.id)
        elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            if not isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
                assigned_other.add(node.target.id)
    return assigned_set - assigned_other


@rule(
    "D103",
    name="unsorted-set-iteration",
    description=(
        "iterating a set in a sim layer is hash-ordered (PYTHONHASHSEED-"
        "dependent for str keys); sort it before it can feed scheduling or "
        "float accumulation"
    ),
)
class UnsortedSetIterationRule(_SimLayerRule):
    def check_sim_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        funcs: List[ast.AST] = [
            node
            for node in ast.walk(source.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        scopes: List[Tuple[ast.AST, Set[str]]] = [
            (func, _local_set_names(func, source)) for func in funcs
        ]
        # Module level (rare but possible): no local inference.
        scopes.append((source.tree, set()))
        seen: Set[Tuple[int, int]] = set()

        def emit(node: ast.AST, what: str) -> Iterator[Finding]:
            key = (node.lineno, node.col_offset)
            if key in seen:
                return
            seen.add(key)
            yield self.finding(
                source,
                node,
                f"{what} iterates a set in hash order; wrap it in sorted() "
                "(or iterate a deterministically ordered container)",
            )

        for scope, set_names in scopes:
            # Nested functions are revisited under the enclosing scope too;
            # the (line, col) dedup in emit() keeps each site reported once.
            for node in ast.walk(scope):
                if isinstance(node, ast.For):
                    if _is_set_expr(node.iter, source, set_names):
                        yield from emit(node.iter, "for loop")
                elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                    for comp in node.generators:
                        if _is_set_expr(comp.iter, source, set_names):
                            yield from emit(comp.iter, "comprehension")
                elif isinstance(node, ast.Call):
                    name = _call_name(node, source)
                    if (
                        name in _ORDER_SENSITIVE_CONSUMERS
                        and node.args
                        and _is_set_expr(node.args[0], source, set_names)
                    ):
                        yield from emit(node.args[0], f"{name}() argument")


def _is_id_or_hash(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in ("id", "hash")
    if isinstance(node, ast.Lambda):
        return any(
            isinstance(inner, ast.Call)
            and isinstance(inner.func, ast.Name)
            and inner.func.id in ("id", "hash")
            for inner in ast.walk(node.body)
        )
    return False


@rule(
    "D104",
    name="identity-ordering",
    description=(
        "id()/hash() vary across processes and interpreter runs; never use "
        "them as a sort key or in ordering comparisons in sim layers"
    ),
)
class IdentityOrderingRule(_SimLayerRule):
    def check_sim_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        for node in walk_runtime(source.tree):
            if isinstance(node, ast.Call):
                name = _call_name(node, source)
                is_sort = name in ("sorted", "min", "max") or (
                    isinstance(node.func, ast.Attribute) and node.func.attr == "sort"
                )
                if not is_sort:
                    continue
                for keyword in node.keywords:
                    if keyword.arg == "key" and _is_id_or_hash(keyword.value):
                        yield self.finding(
                            source,
                            keyword.value,
                            "ordering by id()/hash() is process-dependent; "
                            "sort by a stable field instead",
                        )
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                if any(isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)) for op in node.ops):
                    if any(
                        isinstance(operand, ast.Call)
                        and isinstance(operand.func, ast.Name)
                        and operand.func.id == "id"
                        for operand in operands
                    ):
                        yield self.finding(
                            source,
                            node,
                            "comparing id() values orders by memory "
                            "address; use a stable field instead",
                        )
