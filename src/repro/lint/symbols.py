"""The shared per-file resolved-import/symbol pass.

Every file is parsed once and walked once; the resulting
:class:`SymbolTable` is attached to the file and shared by all rules, so a
run's cost is one AST pass plus cheap per-rule lookups.

The table resolves local names to dotted origins through the import graph of
the file itself (``import random`` binds ``random`` -> ``random``;
``from datetime import datetime as dt`` binds ``dt`` ->
``datetime.datetime``), which lets rules ask "what does this attribute chain
*mean*" (:meth:`SymbolTable.qualname`) instead of string-matching source
text.  Imports under ``if TYPE_CHECKING:`` never execute, so they are
recorded separately and do not count as runtime use of a module.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


@dataclass
class ClassInfo:
    """One class definition: what the S-rules need to know about it."""

    name: str
    node: ast.ClassDef
    has_slots_assignment: bool
    dataclass_slots: bool
    bases: Tuple[str, ...]

    @property
    def slotted(self) -> bool:
        return self.has_slots_assignment or self.dataclass_slots


@dataclass
class SymbolTable:
    """Resolved imports and top-level symbols of one module."""

    #: local name -> dotted origin, runtime imports only.
    imports: Dict[str, str] = field(default_factory=dict)
    #: local names bound by imports inside ``if TYPE_CHECKING:`` blocks.
    type_checking_imports: Dict[str, str] = field(default_factory=dict)
    #: top-level module names imported at runtime ("random", "os.path", ...).
    imported_modules: Set[str] = field(default_factory=set)
    #: every class defined in the file (any nesting level).
    classes: List[ClassInfo] = field(default_factory=list)
    #: names assigned/def'd/imported at module level (module attributes).
    module_attributes: Set[str] = field(default_factory=set)
    #: every Name node id that appears in a Load context somewhere.
    referenced_names: Set[str] = field(default_factory=set)
    #: every attribute name accessed anywhere (``x.foo`` records "foo").
    referenced_attributes: Set[str] = field(default_factory=set)

    def qualname(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of a Name/Attribute chain, or ``None``.

        ``time.perf_counter`` resolves to ``"time.perf_counter"`` when the
        file ran ``import time``; with ``from time import perf_counter`` the
        bare name resolves the same way.  Chains rooted in anything other
        than a resolvable name (calls, subscripts) resolve to ``None``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def references(self, name: str) -> bool:
        """Whether *name* occurs as a Name load, attribute access or import.

        Importing a symbol counts: ``from repro.x import FOO_SCHEMA_VERSION``
        is a reference even when the module never loads the name again
        (e.g. re-exports, ``__all__``-driven uses).
        """
        if name in self.referenced_names or name in self.referenced_attributes:
            return True
        if name in self.imports or name in self.type_checking_imports:
            return True
        return any(
            origin.rpartition(".")[2] == name for origin in self.imports.values()
        )


def _is_type_checking_test(test: ast.expr) -> bool:
    """Whether an ``if`` test is the ``TYPE_CHECKING`` idiom."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _decorator_dataclass_slots(decorator: ast.expr) -> bool:
    """Whether a decorator is ``@dataclass(..., slots=True)``."""
    if not isinstance(decorator, ast.Call):
        return False
    func = decorator.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None
    )
    if name != "dataclass":
        return False
    for keyword in decorator.keywords:
        if keyword.arg == "slots":
            return isinstance(keyword.value, ast.Constant) and keyword.value.value is True
    return False


def _base_name(base: ast.expr) -> str:
    parts: List[str] = []
    node = base
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


class _SymbolVisitor(ast.NodeVisitor):
    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self._type_checking_depth = 0
        self._scope_depth = 0  # 0 = module level

    # ------------------------------------------------------------- imports

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            origin = alias.name if alias.asname else alias.name.split(".")[0]
            self._bind(local, origin, top_module=alias.name.split(".")[0])
        self._record_module_binding(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            origin = f"{module}.{alias.name}" if module else alias.name
            self._bind(local, origin, top_module=module.split(".")[0] if module else None)
        self._record_module_binding(node)

    def _bind(self, local: str, origin: str, top_module: Optional[str]) -> None:
        if self._type_checking_depth:
            self.table.type_checking_imports[local] = origin
            return
        self.table.imports[local] = origin
        if top_module:
            self.table.imported_modules.add(top_module)

    def _record_module_binding(self, node: ast.stmt) -> None:
        if self._scope_depth == 0 and not self._type_checking_depth:
            for alias in node.names:  # type: ignore[attr-defined]
                if alias.name == "*":
                    continue
                self.table.module_attributes.add(
                    alias.asname or alias.name.split(".")[0]
                )

    # ------------------------------------------------------ module symbols

    def visit_If(self, node: ast.If) -> None:
        if _is_type_checking_test(node.test):
            self._type_checking_depth += 1
            for stmt in node.body:
                self.visit(stmt)
            self._type_checking_depth -= 1
            for stmt in node.orelse:
                self.visit(stmt)
            return
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._scope_depth == 0:
            self.table.module_attributes.add(node.name)
        has_slots = any(
            isinstance(stmt, (ast.Assign, ast.AnnAssign))
            and any(
                isinstance(target, ast.Name) and target.id == "__slots__"
                for target in (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
            )
            for stmt in node.body
        )
        self.table.classes.append(
            ClassInfo(
                name=node.name,
                node=node,
                has_slots_assignment=has_slots,
                dataclass_slots=any(
                    _decorator_dataclass_slots(d) for d in node.decorator_list
                ),
                bases=tuple(_base_name(b) for b in node.bases),
            )
        )
        for decorator in node.decorator_list:
            self.visit(decorator)
        self._scope_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        self._scope_depth -= 1

    def _visit_function(self, node) -> None:
        if self._scope_depth == 0:
            self.table.module_attributes.add(node.name)
        for decorator in node.decorator_list:
            self.visit(decorator)
        self._scope_depth += 1
        self.generic_visit(node)
        self._scope_depth -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._scope_depth == 0:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.table.module_attributes.add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self._scope_depth == 0 and isinstance(node.target, ast.Name):
            self.table.module_attributes.add(node.target.id)
        self.generic_visit(node)

    # --------------------------------------------------------- references

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.table.referenced_names.add(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.table.referenced_attributes.add(node.attr)
        self.generic_visit(node)


def build_symbol_table(tree: ast.Module) -> SymbolTable:
    """Run the one-pass symbol/import analysis over a parsed module."""
    table = SymbolTable()
    _SymbolVisitor(table).visit(tree)
    return table


def walk_runtime(tree: ast.Module):
    """Like :func:`ast.walk`, but skipping ``if TYPE_CHECKING:`` bodies.

    Code under ``TYPE_CHECKING`` never executes, so imports and calls there
    cannot be a determinism hazard; rules that care about *runtime*
    behaviour walk through this instead of :func:`ast.walk`.
    """
    pending = [tree]
    while pending:
        node = pending.pop()
        if isinstance(node, ast.If) and _is_type_checking_test(node.test):
            yield node
            pending.extend(node.orelse)
            continue
        yield node
        pending.extend(ast.iter_child_nodes(node))
