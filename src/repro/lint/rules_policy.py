"""C-rules: cross-module policies, mechanized.

Two policies the ROADMAP states in prose become findings here:

* **C301** — the differential-testing harness
  (``tests/protocols/harness.py::oracle_mode``) flips fast-path switches by
  monkey-patching attributes (``Network.ADV_FAST_PATH = False``, ...).  A
  renamed or deleted switch silently turns the oracle into a no-op: the
  differential suite still passes while comparing the fast path against
  itself.  This rule resolves every attribute ``oracle_mode`` touches back
  to a real definition under ``src/``.

* **C302** — "schema bumps travel together": every ``*_SCHEMA_VERSION``
  constant defined under ``src/`` must be referenced from at least one test
  under ``tests/``, so no serialized layout can change without a pinned
  regression noticing.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import Project, SourceFile
from repro.lint.framework import Finding, ProjectRule, rule

_SCHEMA_CONSTANT = re.compile(r"^[A-Z][A-Z0-9_]*_SCHEMA_VERSION$")


def _class_attributes(node: ast.ClassDef) -> Set[str]:
    """Names defined directly in a class body (attrs, methods, annotations)."""
    names: Set[str] = set()
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            names.update(t.id for t in stmt.targets if isinstance(t, ast.Name))
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(stmt.name)
    return names


def _attribute_chain(node: ast.expr) -> Optional[Tuple[str, str]]:
    """``(base_name, attr)`` of a one-level ``Name.attr`` chain, else ``None``."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return node.value.id, node.attr
    return None


def _dunder_dict_lookup(node: ast.expr) -> Optional[Tuple[str, str]]:
    """``(base_name, key)`` of a ``Name.__dict__["key"]`` expression."""
    if not isinstance(node, ast.Subscript):
        return None
    chain = _attribute_chain(node.value)
    if chain is None or chain[1] != "__dict__":
        return None
    key = node.slice
    if isinstance(key, ast.Constant) and isinstance(key.value, str):
        return chain[0], key.value
    return None


def _collect_oracle_switches(
    func: ast.FunctionDef,
) -> List[Tuple[str, str, ast.AST]]:
    """Every ``base.attr`` the oracle saves, patches or restores."""
    switches: List[Tuple[str, str, ast.AST]] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            candidates = list(node.targets) + [node.value]
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            candidates = [node.target, node.value]
        else:
            continue
        for expr in candidates:
            chain = _attribute_chain(expr) or _dunder_dict_lookup(expr)
            if chain is not None and not chain[1].startswith("__"):
                switches.append((chain[0], chain[1], expr))
    return switches


@rule(
    "C301",
    name="oracle-switches-resolve",
    description=(
        "every fast-path switch oracle_mode() patches must resolve to a real "
        "attribute under src/ (a rename would silently disable the oracle)"
    ),
)
class OracleSwitchesResolveRule(ProjectRule):
    def check(self, project: Project) -> Iterator[Finding]:
        harness_path = project.config.harness_path
        harness = project.parse_external(harness_path)
        if harness is None or harness.tree is None:
            yield Finding(
                rule=self.id,
                severity=self.severity,
                path=harness_path,
                line=0,
                col=0,
                message=(
                    "differential-testing harness not found (or unparseable); "
                    "the oracle-equality gate has no switches to check"
                ),
            )
            return
        oracle = next(
            (
                node
                for node in harness.tree.body
                if isinstance(node, ast.FunctionDef) and node.name == "oracle_mode"
            ),
            None,
        )
        if oracle is None:
            yield self.finding(
                harness, harness.tree, "harness defines no oracle_mode() function"
            )
            return

        checked: Set[Tuple[str, str]] = set()
        for base, attr, node in _collect_oracle_switches(oracle):
            if (base, attr) in checked:
                continue
            checked.add((base, attr))
            origin = harness.symbols.imports.get(base)
            if origin is None:
                continue  # locals (saved_* temporaries) are not switches
            problem = self._resolve(project, origin, attr)
            if problem is not None:
                yield self.finding(
                    harness,
                    node,
                    f"oracle_mode() patches {base}.{attr} but {problem}; the "
                    "differential suite would compare the fast path against "
                    "itself",
                )
        if not checked:
            yield self.finding(
                harness,
                oracle,
                "oracle_mode() patches no attributes; every fast path must "
                "keep an oracle switch",
            )

    def _resolve(self, project: Project, origin: str, attr: str) -> Optional[str]:
        """``None`` when ``origin.attr`` exists under src/, else the problem."""
        module_source = project.module_file(origin)
        if module_source is not None:
            if attr in module_source.symbols.module_attributes:
                return None
            return f"module {origin!r} defines no attribute {attr!r}"
        # origin is module.ClassName: the class must define attr itself
        # (oracle_mode saves via __dict__-adjacent semantics, so inherited
        # attributes do not count).
        module, _, class_name = origin.rpartition(".")
        if not module:
            return f"cannot resolve {origin!r} to a module under src/"
        module_source = project.module_file(module)
        if module_source is None:
            return f"cannot resolve module {module!r} under src/"
        for info in module_source.symbols.classes:
            if info.name == class_name:
                if attr in _class_attributes(info.node):
                    return None
                return f"class {origin!r} defines no attribute {attr!r}"
        return f"module {module!r} defines no class {class_name!r}"


@rule(
    "C302",
    name="schema-version-tested",
    description=(
        "every *_SCHEMA_VERSION constant under src/ must be referenced by at "
        "least one test (the 'schema bumps travel together' policy)"
    ),
)
class SchemaVersionTestedRule(ProjectRule):
    def check(self, project: Project) -> Iterator[Finding]:
        src_prefix = project.config.src_root.rstrip("/") + "/"
        definitions: Dict[str, Tuple[SourceFile, ast.AST]] = {}
        for source in project.files:
            if not source.relpath.startswith(src_prefix) or source.tree is None:
                continue
            for node in source.tree.body:
                if isinstance(node, ast.Assign):
                    targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
                elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                    targets = [node.target.id]
                else:
                    continue
                for name in targets:
                    if _SCHEMA_CONSTANT.match(name):
                        definitions.setdefault(name, (source, node))
        if not definitions:
            return
        tests = project.tests_files()
        for name in sorted(definitions):
            source, node = definitions[name]
            if any(test.symbols.references(name) for test in tests):
                continue
            yield self.finding(
                source,
                node,
                f"schema constant {name} is not referenced by any test under "
                f"{project.config.tests_root}/; pin the layout (schema bumps "
                "travel together)",
            )
