"""Lint engine: file collection, the shared parse pass, rule execution.

One run is::

    config  = load_config(project_root, paths=["src"])
    report  = run_lint(config)
    report.exit_code  # 0 clean, 1 findings, 2 usage error

Each collected file is parsed exactly once; the AST, raw lines and the
resolved-import/symbol pass (:mod:`repro.lint.symbols`) are shared by every
rule through :class:`SourceFile`.  Project rules additionally see lazily
parsed out-of-scope files (the oracle harness, the tests tree) through
:meth:`Project.parse_external` / :meth:`Project.tests_files`.
"""

from __future__ import annotations

import ast
import fnmatch
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.lint.baseline import load_baseline
from repro.lint.config import LintConfig
from repro.lint.framework import (
    Finding,
    Rule,
    RuleRegistry,
    Severity,
    default_registry,
)
from repro.lint.suppress import (
    SuppressionIndex,
    apply_suppressions,
    apply_suppressions_tracked,
    scan_suppressions,
)
from repro.lint.symbols import SymbolTable, build_symbol_table


@dataclass
class SourceFile:
    """One parsed module plus everything the rules share about it."""

    path: Path
    relpath: str
    text: str
    lines: Tuple[str, ...]
    tree: Optional[ast.Module]
    symbols: SymbolTable
    suppressions: SuppressionIndex
    layer: Optional[str]
    #: Why the file could not be read at all (E002), if it couldn't.
    read_error: Optional[str] = None

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


def _classify_layer(relpath: str) -> Optional[str]:
    """The ``repro`` package layer a file belongs to, if any.

    ``src/repro/mac/delay.py`` -> ``"mac"``; files outside ``repro`` (tests,
    benchmarks, scripts) classify as ``None`` and are skipped by the
    layer-scoped rule families.
    """
    parts = Path(relpath).parts
    if "repro" not in parts:
        return None
    index = parts.index("repro")
    remainder = parts[index + 1 :]
    if len(remainder) < 2:
        return None  # top-level modules like repro/cli.py
    return remainder[0]


def parse_source(path: Path, relpath: str) -> SourceFile:
    """Parse one file into a :class:`SourceFile`.

    Never raises on bad input: a syntax error leaves ``tree`` ``None``
    (one E001 finding), and a file that cannot be read or decoded at all
    sets ``read_error`` (one E002 finding) — a single broken file must
    cost one finding, not the whole run.
    """
    try:
        text = path.read_text(encoding="utf-8")
    except (UnicodeDecodeError, OSError) as exc:
        reason = (
            "not valid UTF-8" if isinstance(exc, UnicodeDecodeError) else str(exc)
        )
        return SourceFile(
            path=path,
            relpath=relpath,
            text="",
            lines=(),
            tree=None,
            symbols=SymbolTable(),
            suppressions=SuppressionIndex(),
            layer=_classify_layer(relpath),
            read_error=reason,
        )
    lines = tuple(text.splitlines())
    try:
        tree: Optional[ast.Module] = ast.parse(text, filename=str(path))
    except SyntaxError:
        tree = None
    symbols = build_symbol_table(tree) if tree is not None else SymbolTable()
    return SourceFile(
        path=path,
        relpath=relpath,
        text=text,
        lines=lines,
        tree=tree,
        symbols=symbols,
        suppressions=scan_suppressions(lines),
        layer=_classify_layer(relpath),
    )


class Project:
    """The lint run's view of the repository."""

    def __init__(self, config: LintConfig, files: List[SourceFile]) -> None:
        self.config = config
        self.files = files
        self._external: Dict[str, Optional[SourceFile]] = {}
        self._tests_files: Optional[List[SourceFile]] = None
        self._callgraph = None

    def callgraph(self):
        """The resolved project call graph, built once per run.

        Every graph rule in a run shares this construction; building is
        deferred until the first consumer so per-file-only runs never pay
        for it.
        """
        if self._callgraph is None:
            from repro.lint.callgraph import build_callgraph

            self._callgraph = build_callgraph(self)
        return self._callgraph

    @property
    def graph_built(self) -> bool:
        return self._callgraph is not None

    @property
    def root(self) -> Path:
        return self.config.project_root

    def relpath(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    def find(self, relpath: str) -> Optional[SourceFile]:
        """The in-scope file at *relpath*, if it was collected."""
        for source in self.files:
            if source.relpath == relpath:
                return source
        return None

    def parse_external(self, relpath: str) -> Optional[SourceFile]:
        """Parse a file by project-relative path even when out of scope.

        In-scope files are returned from the already-parsed set; external
        ones are parsed once and memoised.  Returns ``None`` when the file
        does not exist.
        """
        in_scope = self.find(relpath)
        if in_scope is not None:
            return in_scope
        if relpath not in self._external:
            path = self.root / relpath
            self._external[relpath] = (
                parse_source(path, relpath) if path.is_file() else None
            )
        return self._external[relpath]

    def module_file(self, module: str) -> Optional[SourceFile]:
        """The source file of dotted module *module* under the src root."""
        base = Path(self.config.src_root) / Path(*module.split("."))
        for candidate in (base.with_suffix(".py"), base / "__init__.py"):
            source = self.parse_external(candidate.as_posix())
            if source is not None:
                return source
        return None

    def tests_files(self) -> List[SourceFile]:
        """Every parsed file under the tests root (lazily, memoised)."""
        if self._tests_files is None:
            tests_root = self.root / self.config.tests_root
            collected: List[SourceFile] = []
            if tests_root.is_dir():
                for path in sorted(tests_root.rglob("*.py")):
                    relpath = self.relpath(path)
                    source = self.find(relpath) or self.parse_external(relpath)
                    if source is not None:
                        collected.append(source)
            self._tests_files = collected
        return self._tests_files


def collect_files(config: LintConfig) -> Tuple[List[Tuple[Path, str]], List[str]]:
    """Expand the configured paths into (path, relpath) pairs.

    Returns the files plus a list of user errors (missing paths).  Results
    are sorted by relpath so runs are order-independent of the filesystem.
    """
    root = config.project_root
    errors: List[str] = []
    seen: Dict[str, Path] = {}
    for entry in config.paths:
        path = Path(entry)
        if not path.is_absolute():
            path = root / path
        if path.is_file():
            candidates = [path]
        elif path.is_dir():
            candidates = sorted(p for p in path.rglob("*.py") if p.is_file())
        else:
            errors.append(f"lint path not found: {entry}")
            continue
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            try:
                relpath = candidate.resolve().relative_to(root).as_posix()
            except ValueError:
                relpath = candidate.as_posix()
            if any(fnmatch.fnmatch(relpath, pattern) for pattern in config.exclude):
                continue
            seen.setdefault(relpath, candidate)
    return [(seen[relpath], relpath) for relpath in sorted(seen)], errors


@dataclass
class LintReport:
    """Everything one run produced, pre-partitioned for reporting."""

    config: LintConfig
    files_checked: int
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    rules_run: Tuple[str, ...] = ()
    #: Whether the project call graph was constructed this run (phase two).
    graph_built: bool = False
    #: ``--graph-debug`` dump of the resolved call graph, when requested.
    graph_dump: Optional[Dict[str, object]] = None

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        if any(f.severity is Severity.ERROR for f in self.findings):
            return 1
        return 0


def run_lint(
    config: LintConfig,
    registry: Optional[RuleRegistry] = None,
) -> LintReport:
    """Execute one lint run under *config* and return the report."""
    registry = registry or default_registry()
    pairs, errors = collect_files(config)
    files = [parse_source(path, relpath) for path, relpath in pairs]
    project = Project(config, files)

    rules: List[Rule] = registry.instantiate(config.select, config.ignore)
    selected_ids = {rule_instance.id for rule_instance in rules}
    findings: List[Finding] = []
    for source in files:
        if source.read_error is not None:
            if "E002" in selected_ids:
                findings.append(
                    Finding(
                        rule="E002",
                        severity=Severity.ERROR,
                        path=source.relpath,
                        line=0,
                        col=0,
                        message=f"file could not be read: {source.read_error}",
                    )
                )
        elif source.tree is None and "E001" in selected_ids:
            findings.append(
                Finding(
                    rule="E001",
                    severity=Severity.ERROR,
                    path=source.relpath,
                    line=1,
                    col=0,
                    message="file does not parse (syntax error)",
                    line_text=source.line_text(1),
                )
            )

    # Phase one: per-file rules.  Phase two: project/graph rules, sharing
    # one memoised call-graph construction (built on first consumer; not at
    # all when no selected rule needs it).
    file_rules = [r for r in rules if not r.needs_graph]
    graph_rules = [r for r in rules if r.needs_graph]
    for rule_instance in file_rules:
        findings.extend(rule_instance.check(project))
    for rule_instance in graph_rules:
        findings.extend(rule_instance.check(project))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    indexes = {source.relpath: source.suppressions for source in files}
    kept, suppressed, used = apply_suppressions_tracked(findings, indexes)

    if "W001" in selected_ids:
        from repro.lint.rules_engine import useless_directives

        stale = sorted(
            useless_directives(files, used, selected_ids),
            key=lambda f: (f.path, f.line, f.col, f.message),
        )
        stale_kept, stale_suppressed = apply_suppressions(stale, indexes)
        kept = sorted(
            [*kept, *stale_kept], key=lambda f: (f.path, f.line, f.col, f.rule)
        )
        suppressed.extend(stale_suppressed)

    baselined: List[Finding] = []
    baseline_path = config.baseline_path()
    if baseline_path is not None:
        known = load_baseline(baseline_path)
        fresh = []
        for finding in kept:
            if finding.fingerprint in known:
                baselined.append(finding)
            else:
                fresh.append(finding)
        kept = fresh

    graph_dump: Optional[Dict[str, object]] = None
    if config.graph_debug:
        graph_dump = project.callgraph().to_dict()

    return LintReport(
        config=config,
        files_checked=len(files),
        findings=kept,
        suppressed=suppressed,
        baselined=baselined,
        errors=errors,
        rules_run=tuple(r.id for r in rules),
        graph_built=project.graph_built,
        graph_dump=graph_dump,
    )
