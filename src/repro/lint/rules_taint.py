"""T-rules: cross-file entropy taint.

The per-file D101/D102 rules catch a sim-layer module touching ``random``
*directly*; these close the laundering holes that survive them:

* **T401** — a sim-layer function reaches stdlib entropy *transitively*,
  through any chain of resolved calls into helper modules the D-rules do
  not scope (``deliver -> _jitter -> random.random()``).  Flagged at the
  sim-layer function, with the sample chain in the message.
* **T402** — a call under ``src/`` passes a raw ``random.Random`` (or
  ``SystemRandom``) into another function, seeding a parameter no rule can
  see into.  Values drawn from :class:`~repro.sim.rng.RandomStreams` are
  constructed inside the one exempt module and never match either flagged
  shape, so the legal path stays silent.

Taint only flows along resolved edges: an unresolved call never taints, so
every T401 finding comes with a concrete, checkable chain.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import CallGraph
from repro.lint.dataflow import (
    direct_entropy_uses,
    local_raw_random_names,
    propagate_entropy_taint,
    raw_random_arguments,
)
from repro.lint.engine import Project, SourceFile
from repro.lint.framework import FileRule, Finding, GraphRule, rule
from repro.lint.symbols import walk_runtime


@rule(
    "T401",
    name="no-transitive-entropy",
    description=(
        "sim-layer functions must not reach stdlib entropy through any call "
        "chain; all draws go through RandomStreams"
    ),
)
class TransitiveEntropyRule(GraphRule):
    def check_graph(self, project: Project, graph: CallGraph) -> Iterator[Finding]:
        config = project.config
        direct = direct_entropy_uses(project, graph)
        chains = propagate_entropy_taint(graph, direct)
        for fid in sorted(chains):
            info = graph.functions[fid]
            if info.layer not in config.sim_layers:
                continue
            if info.relpath.endswith(config.rng_module_suffix):
                continue
            if fid in direct:
                # Entropy used in the function's own body: that file imports
                # an entropy module, which is the per-file D101's finding.
                continue
            source = project.find(info.relpath)
            if source is None:  # pragma: no cover - layer implies in scope
                continue
            chain = chains[fid]
            yield self.finding(
                source,
                info.node,
                f"sim-layer function {info.qualname}() reaches stdlib "
                f"entropy through {chain.render(graph)}; route the draw "
                "through a RandomStreams named stream",
            )


@rule(
    "T402",
    name="no-raw-random-argument",
    description=(
        "src/ code must not pass a raw random.Random into a function; seed "
        "through RandomStreams (named streams / spawn_seed)"
    ),
)
class RawRandomArgumentRule(FileRule):
    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        config = project.config
        src_prefix = config.src_root.rstrip("/") + "/"
        if (
            source.tree is None
            or not source.relpath.startswith(src_prefix)
            or source.relpath.endswith(config.rng_module_suffix)
        ):
            return
        imports = source.symbols.imports
        # File-level approximation: a name assigned a raw Random anywhere in
        # the file taints that name everywhere in it.  src/ holds no
        # same-name reuse across scopes worth distinguishing, and the
        # approximation only ever errs toward flagging entropy plumbing.
        tainted_names = local_raw_random_names(imports, source.tree)
        for node in walk_runtime(source.tree):
            if not isinstance(node, ast.Call):
                continue
            for arg, dotted in raw_random_arguments(imports, node, tainted_names):
                target = source.symbols.qualname(node.func) or "a call"
                if dotted == target or (dotted + ".").startswith(target + "."):
                    continue  # the construction itself, not an argument leak
                yield self.finding(
                    source,
                    arg,
                    f"raw {dotted} passed into {target}(); accept a "
                    "RandomStreams stream (or a spawn_seed) instead so the "
                    "draw order stays reproducible",
                )
