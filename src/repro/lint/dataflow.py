"""Taint/reachability analyses on top of the resolved call graph.

Three analyses, each consumed by one rule family:

* **entropy taint** (T-rules): which functions call stdlib entropy
  directly, and which functions can *reach* one through any chain of
  resolved calls — with a sample chain kept per tainted function so the
  finding can say ``deliver -> _jitter -> random.random``;
* **lock dominance** (L-rules): which functions are only ever entered with
  a configured lock already held, computed as a greatest-fixpoint over the
  caller edges (a call site counts as locked when it sits lexically inside
  a matching ``with`` block, or its caller is itself dominated);
* plain forward/backward reachability re-exported from
  :meth:`repro.lint.callgraph.CallGraph.reachable`.

All of it is conservative in the safe direction for its consumer: taint
only flows along *resolved* edges (an unresolved call never taints), while
lock dominance *breaks* on unresolved entry points (a function anyone
could call unlocked is unlocked).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.callgraph import MODULE_SCOPE, CallGraph, CallSite

# Entropy spellings are shared with the per-file D101/D102 rules so the
# taint layer can never drift out of sync with them.
from repro.lint.rules_determinism import ENTROPY_CALLS, ENTROPY_MODULES

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.lint.engine import Project


@dataclass(frozen=True)
class EntropyUse:
    """One direct call to stdlib entropy inside one function scope."""

    function_id: str
    qualname: str  # resolved dotted callee ("random.random", "os.urandom")
    lineno: int


@dataclass(frozen=True)
class TaintChain:
    """Why a function is entropy-tainted: a sample call chain to the use.

    ``links`` runs from the tainted function to the direct user (inclusive);
    ``use`` is the entropy call at the end of it.
    """

    function_id: str
    links: Tuple[str, ...]
    use: EntropyUse

    def render(self, graph: CallGraph) -> str:
        names = []
        for fid in self.links:
            info = graph.functions.get(fid)
            names.append(info.qualname if info is not None else fid)
        tail = f"{self.use.qualname}()"
        return " -> ".join([*names, tail])


def resolve_call_qualname(imports: Dict[str, str], target_text: str) -> str:
    """Dotted origin of a call's rendered target under a file's imports."""
    root, _, rest = target_text.partition(".")
    origin = imports.get(root, root)
    return f"{origin}.{rest}" if rest else origin


def _entropy_qualname(imports: Dict[str, str], site: CallSite) -> Optional[str]:
    dotted = resolve_call_qualname(imports, site.target_text)
    if dotted.split(".", 1)[0] in ENTROPY_MODULES or dotted in ENTROPY_CALLS:
        return dotted
    return None


def direct_entropy_uses(
    project: "Project", graph: CallGraph
) -> Dict[str, List[EntropyUse]]:
    """Functions that call stdlib entropy in their own body.

    The one legal entropy module (``config.rng_module_suffix`` — the
    :class:`RandomStreams` registry) is exempt: drawing there *is* the
    deterministic path.
    """
    suffix = project.config.rng_module_suffix
    uses: Dict[str, List[EntropyUse]] = {}
    for fid, info in graph.functions.items():
        if info.relpath.endswith(suffix):
            continue
        imports = graph.module_imports.get(info.module, {})
        for site in graph.calls_from(fid):
            dotted = _entropy_qualname(imports, site)
            if dotted is not None:
                uses.setdefault(fid, []).append(
                    EntropyUse(function_id=fid, qualname=dotted, lineno=site.lineno)
                )
    return uses


def propagate_entropy_taint(
    graph: CallGraph, direct: Dict[str, List[EntropyUse]]
) -> Dict[str, TaintChain]:
    """Backward-propagate entropy taint from direct users to every caller.

    Returns one sample :class:`TaintChain` per tainted function (direct
    users included, with a single-link chain).  BFS order keeps the sample
    chain shortest, so findings read as the tightest laundering path.
    """
    chains: Dict[str, TaintChain] = {}
    frontier: List[str] = []
    for fid, uses in direct.items():
        use = min(uses, key=lambda u: (u.lineno, u.qualname))
        chains[fid] = TaintChain(function_id=fid, links=(fid,), use=use)
        frontier.append(fid)
    while frontier:
        next_frontier: List[str] = []
        for fid in frontier:
            chain = chains[fid]
            for site in graph.callers_of(fid):
                caller = site.caller
                if caller in chains:
                    continue
                chains[caller] = TaintChain(
                    function_id=caller,
                    links=(caller, *chain.links),
                    use=chain.use,
                )
                next_frontier.append(caller)
        frontier = next_frontier
    return chains


def site_locked(site: CallSite, lock_names: Sequence[str]) -> bool:
    """Whether a call site sits lexically inside a configured lock ``with``."""
    return any(ctx in lock_names for ctx in site.lock_contexts)


def lock_dominated(graph: CallGraph, lock_names: Sequence[str]) -> Dict[str, bool]:
    """Greatest fixpoint of "only ever entered with the lock held".

    ``dominated[f]`` is ``True`` when every resolved call into *f* either
    sits inside a matching ``with`` block or comes from a function that is
    itself dominated.  Functions with no resolved callers — public entry
    points, anything reachable only dynamically — are ``False``: if anyone
    *could* call it unlocked, it is not dominated.  Module pseudo-scopes are
    entry points by construction (imports run unlocked).
    """
    names = tuple(lock_names)
    dominated: Dict[str, bool] = {}
    for fid, info in graph.functions.items():
        dominated[fid] = bool(graph.in_edges.get(fid)) and info.qualname != MODULE_SCOPE
    changed = True
    while changed:
        changed = False
        for fid in graph.functions:
            if not dominated[fid]:
                continue
            still = all(
                site_locked(site, names) or dominated.get(site.caller, False)
                for site in graph.in_edges.get(fid, ())
            )
            if not still:
                dominated[fid] = False
                changed = True
    return dominated


def raw_random_arguments(
    source_symbols_imports: Dict[str, str],
    call: ast.Call,
    local_random_names: Set[str],
) -> List[Tuple[ast.expr, str]]:
    """Arguments of *call* that carry a raw ``random.Random`` instance.

    Catches the two provable shapes: a ``random.Random(...)`` /
    ``random.SystemRandom(...)`` construction inline in argument position,
    and a bare name the enclosing function assigned from one
    (*local_random_names*).  Values drawn from :class:`RandomStreams` are
    never of either shape, so they pass untouched.
    """
    flagged: List[Tuple[ast.expr, str]] = []
    for arg in [*call.args, *[kw.value for kw in call.keywords]]:
        if isinstance(arg, ast.Call):
            dotted = _dotted(source_symbols_imports, arg.func)
            if dotted in ("random.Random", "random.SystemRandom"):
                flagged.append((arg, dotted))
        elif isinstance(arg, ast.Name) and arg.id in local_random_names:
            flagged.append((arg, "random.Random"))
    return flagged


def local_raw_random_names(
    source_symbols_imports: Dict[str, str], func: ast.AST
) -> Set[str]:
    """Local names assigned a raw ``random.Random`` anywhere in *func*."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        dotted = _dotted(source_symbols_imports, node.value.func)
        if dotted in ("random.Random", "random.SystemRandom"):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _dotted(imports: Dict[str, str], node: ast.expr) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = imports.get(node.id, node.id)
    return ".".join([root, *reversed(parts)]) if parts else root
