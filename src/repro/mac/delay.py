"""Composition of the per-transmission latency.

Following Section 4.1 of the paper::

    Delay for any transmission = MAC contention delay
                               + transmission delay of the packet
                               + processing delay at the receiver

plus, in the simulation, a random slotted backoff drawn uniformly from
``{0, ..., num_slots - 1} * slot_time_ms``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.mac.contention import ContentionModel, QuadraticContention
from repro.sim.rng import RandomStreams


@dataclass(frozen=True, slots=True)
class TransmissionTiming:
    """Breakdown of a single transmission's latency (all milliseconds)."""

    contention_ms: float
    backoff_ms: float
    airtime_ms: float
    processing_ms: float

    @property
    def sender_delay_ms(self) -> float:
        """Delay before the packet leaves the sender (access + backoff)."""
        return self.contention_ms + self.backoff_ms

    @property
    def total_ms(self) -> float:
        """End-to-end latency of this hop."""
        return self.contention_ms + self.backoff_ms + self.airtime_ms + self.processing_ms


class MacDelayModel:
    """Computes per-hop latencies.

    Args:
        contention: Channel-access contention model; defaults to the paper's
            quadratic ``G * n**2``.
        slot_time_ms: Backoff slot duration (Table 1: 0.1 ms).
        num_slots: Number of backoff slots (Table 1: 20).
        t_tx_per_byte_ms: Transmission time per byte (Table 1: 0.05 ms/byte).
        t_proc_ms: Processing delay at a receiving node (0.02 ms).
        rng: Optional random streams; when omitted the backoff is zero, which
            matches the deterministic analytical model.
    """

    BACKOFF_STREAM = "mac.backoff"

    def __init__(
        self,
        contention: Optional[ContentionModel] = None,
        slot_time_ms: float = 0.1,
        num_slots: int = 20,
        t_tx_per_byte_ms: float = 0.05,
        t_proc_ms: float = 0.02,
        rng: Optional[RandomStreams] = None,
    ) -> None:
        if slot_time_ms < 0:
            raise ValueError(f"slot time must be non-negative, got {slot_time_ms}")
        if num_slots < 1:
            raise ValueError(f"need at least one slot, got {num_slots}")
        if t_tx_per_byte_ms <= 0:
            raise ValueError(f"t_tx_per_byte_ms must be positive, got {t_tx_per_byte_ms}")
        if t_proc_ms < 0:
            raise ValueError(f"processing delay must be non-negative, got {t_proc_ms}")
        self.contention = contention if contention is not None else QuadraticContention()
        self.slot_time_ms = slot_time_ms
        self.num_slots = num_slots
        self.t_tx_per_byte_ms = t_tx_per_byte_ms
        self.t_proc_ms = t_proc_ms
        self.rng = rng
        # The same handful of (size, contenders) pairs recurs across every
        # transmission of a run, so the deterministic timing components are
        # memoised.  The random backoff is *never* memoised: each call must
        # draw from the RNG stream exactly as an unmemoised model would, or
        # metrics stop being byte-identical.
        self._deterministic_memo: Dict[Tuple[int, int], Tuple[float, float, float]] = {}
        self._timing_memo: Dict[Tuple[int, int], TransmissionTiming] = {}
        # The backoff stream object, resolved once: every backoff draws from
        # the same named stream, so the registry lookup is paid only on the
        # first draw.  Safe across RandomStreams.reset(), which re-seeds
        # stream objects in place.
        self._backoff_stream = None

    def backoff_ms(self, contenders: Optional[int] = None) -> float:
        """Draw a random slotted backoff (0 when no RNG is attached).

        The contention window scales with the number of contenders — a node
        alone on the channel barely backs off, a node in a crowded zone backs
        off over the full window — mirroring how CSMA/CA windows grow under
        congestion and consistent with the paper's ``G n**2`` access-delay
        reasoning.  The window never exceeds ``num_slots``.
        """
        if self.rng is None:
            return 0.0
        if contenders is None:
            window = self.num_slots
        else:
            if contenders < 0:
                raise ValueError(f"contenders must be non-negative, got {contenders}")
            window = max(1, min(self.num_slots, contenders))
        if window <= 1:
            return 0.0
        stream = self._backoff_stream
        if stream is None:
            stream = self.rng.stream(self.BACKOFF_STREAM)
            self._backoff_stream = stream
        # Identical draw to ``rng.randint(BACKOFF_STREAM, 0, window - 1)``,
        # minus the per-call registry lookup.
        return stream.randint(0, window - 1) * self.slot_time_ms

    def airtime_ms(self, size_bytes: int) -> float:
        """Time on air for *size_bytes*."""
        if size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {size_bytes}")
        return size_bytes * self.t_tx_per_byte_ms

    def delay_parts(self, size_bytes: int, contenders: int) -> Tuple[float, float, float]:
        """Memoised ``(contention_ms, airtime_ms, processing_ms)`` tuple.

        The deterministic components of :meth:`timing` without the random
        backoff and without constructing a :class:`TransmissionTiming` — the
        transmission hot path draws the backoff separately (exactly one
        :meth:`backoff_ms` call, preserving the RNG stream) and adds the
        parts inline.
        """
        key = (size_bytes, contenders)
        parts = self._deterministic_memo.get(key)
        if parts is None:
            parts = (
                self.contention.access_delay_ms(contenders),
                self.airtime_ms(size_bytes),
                self.t_proc_ms,
            )
            self._deterministic_memo[key] = parts
        return parts

    def timing(self, size_bytes: int, contenders: int) -> TransmissionTiming:
        """Latency breakdown for one transmission (memoised hot path).

        Contention and airtime are pure functions of ``(size_bytes,
        contenders)`` — purity is part of the
        :class:`~repro.mac.contention.ContentionModel` contract — and are
        cached after the first computation; with no RNG attached the whole
        (immutable) breakdown is cached.  With an RNG the backoff is drawn
        fresh on every call, preserving the exact draw sequence of an
        unmemoised model.

        Args:
            size_bytes: Packet size.
            contenders: Number of nodes within the transmission radius used,
                i.e. the nodes competing for the channel.
        """
        key = (size_bytes, contenders)
        if self.rng is None:
            cached = self._timing_memo.get(key)
            if cached is None:
                cached = TransmissionTiming(
                    contention_ms=self.contention.access_delay_ms(contenders),
                    backoff_ms=self.backoff_ms(contenders),
                    airtime_ms=self.airtime_ms(size_bytes),
                    processing_ms=self.t_proc_ms,
                )
                self._timing_memo[key] = cached
            return cached
        contention_ms, airtime_ms, processing_ms = self.delay_parts(size_bytes, contenders)
        return TransmissionTiming(
            contention_ms=contention_ms,
            backoff_ms=self.backoff_ms(contenders),
            airtime_ms=airtime_ms,
            processing_ms=processing_ms,
        )
