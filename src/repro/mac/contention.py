"""Channel-access contention models.

The default is the paper's quadratic model ``G * n**2``.  The footnote in
Section 4.1 observes that other MAC delay models use higher powers of ``n`` or
an exponential function of ``n`` and that substituting them only biases the
comparison further towards SPMS; the :class:`PolynomialContention` and
:class:`ExponentialContention` variants exist to reproduce that ablation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class ContentionModel(ABC):
    """Maps the number of contending nodes to an expected access delay (ms).

    Contract: :meth:`access_delay_ms` must be a **pure function** of
    *contenders* — no internal state, clock or RNG dependence.  The MAC delay
    model memoises its value per ``(size, contenders)`` on the simulation's
    hottest path (:meth:`repro.mac.delay.MacDelayModel.timing`), so a
    stateful plugin model would silently be evaluated once and frozen.
    Randomness belongs in the backoff (which is drawn fresh on every call),
    not in the contention model.
    """

    @abstractmethod
    def access_delay_ms(self, contenders: int) -> float:
        """Expected channel-access delay with *contenders* nodes in range.

        Must be pure (see the class contract): same *contenders*, same delay.
        """

    def _validate(self, contenders: int) -> None:
        if contenders < 0:
            raise ValueError(f"contenders must be non-negative, got {contenders}")


class QuadraticContention(ContentionModel):
    """The paper's model: ``T_csma = G * n**2``.

    Args:
        g: Proportionality constant (the paper's example uses ``G = 0.01``).
    """

    def __init__(self, g: float = 0.01) -> None:
        if g < 0:
            raise ValueError(f"G must be non-negative, got {g}")
        self.g = g

    def access_delay_ms(self, contenders: int) -> float:
        self._validate(contenders)
        return self.g * contenders**2


class PolynomialContention(ContentionModel):
    """Generalised polynomial model ``G * n**p`` used for ablations."""

    def __init__(self, g: float = 0.01, exponent: float = 2.0) -> None:
        if g < 0:
            raise ValueError(f"G must be non-negative, got {g}")
        if exponent < 0:
            raise ValueError(f"exponent must be non-negative, got {exponent}")
        self.g = g
        self.exponent = exponent

    def access_delay_ms(self, contenders: int) -> float:
        self._validate(contenders)
        return self.g * contenders**self.exponent


class ExponentialContention(ContentionModel):
    """Exponential model ``G * (base**n - 1)`` — the harshest MAC assumption."""

    def __init__(self, g: float = 0.01, base: float = 1.2) -> None:
        if g < 0:
            raise ValueError(f"G must be non-negative, got {g}")
        if base <= 1.0:
            raise ValueError(f"base must exceed 1, got {base}")
        self.g = g
        self.base = base

    def access_delay_ms(self, contenders: int) -> float:
        self._validate(contenders)
        return self.g * (self.base**contenders - 1.0)
