"""Shared-medium reservation (virtual carrier sense).

The analytical ``G n**2`` term models the *expected* access delay, but the
dominant effect in the simulation — and the mechanism behind SPIN's large
end-to-end delays — is that a transmission occupies the channel for every
node inside its transmission radius.  SPIN's maximum-power packets block the
whole zone, so the many unicast DATA responses per advertisement serialise;
SPMS's low-power hops block only a handful of nodes and proceed in parallel
(spatial reuse).

:class:`ChannelReservation` tracks, per node, the time until which the medium
is busy.  A new transmission starts no earlier than its sender's busy-until
time and, once started, extends the busy-until time of every node inside the
transmission radius.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable


class ChannelReservation:
    """Per-node medium occupancy tracking."""

    def __init__(self) -> None:
        self._busy_until: Dict[int, float] = defaultdict(float)
        self.total_wait_ms = 0.0
        self.deferred_transmissions = 0

    def earliest_start(self, sender: int, ready_at_ms: float) -> float:
        """Earliest time *sender* may start transmitting given its busy medium."""
        return max(ready_at_ms, self._busy_until[sender])

    def reserve(
        self, affected_nodes: Iterable[int], start_ms: float, airtime_ms: float
    ) -> float:
        """Mark the medium busy for *affected_nodes* during the transmission.

        Args:
            affected_nodes: Every node inside the transmission radius
                (including the sender).
            start_ms: When the transmission starts.
            airtime_ms: How long it occupies the channel.

        Returns:
            The end time of the transmission.
        """
        if airtime_ms < 0:
            raise ValueError(f"airtime must be non-negative, got {airtime_ms}")
        end = start_ms + airtime_ms
        for node in affected_nodes:
            if end > self._busy_until[node]:
                self._busy_until[node] = end
        return end

    def record_wait(self, wait_ms: float) -> None:
        """Accumulate statistics about time spent waiting for the medium."""
        if wait_ms > 0:
            self.total_wait_ms += wait_ms
            self.deferred_transmissions += 1

    def busy_until(self, node: int) -> float:
        """Time until which *node*'s medium is busy."""
        return self._busy_until[node]

    def reset(self) -> None:
        """Forget all reservations."""
        self._busy_until.clear()
        self.total_wait_ms = 0.0
        self.deferred_transmissions = 0
