"""MAC-layer delay model.

The paper models the CSMA/CA channel-access delay as ``T_csma = G * n**2``
where ``n`` is the number of nodes inside the transmission radius used for the
packet and ``G`` is a proportionality constant (Section 4.1, citing [8][9]).
On top of the deterministic contention term, the simulation adds a slotted
random backoff (Table 1: slot time 0.1 ms, 20 slots) so that simultaneous
transmissions in a zone are de-synchronised, as a real CSMA MAC would do.

The overall per-transmission latency follows the paper's decomposition::

    delay = contention(n) + backoff + size * T_tx + T_proc

where the processing delay ``T_proc`` is charged at the receiver.
"""

from repro.mac.channel import ChannelReservation
from repro.mac.contention import (
    ContentionModel,
    ExponentialContention,
    PolynomialContention,
    QuadraticContention,
)
from repro.mac.delay import MacDelayModel, TransmissionTiming

__all__ = [
    "ChannelReservation",
    "ContentionModel",
    "ExponentialContention",
    "MacDelayModel",
    "PolynomialContention",
    "QuadraticContention",
    "TransmissionTiming",
]
