"""Metric collection: energy, end-to-end delay, delivery bookkeeping.

Both protocols are measured through the same collector so the comparisons in
the experiments cannot be skewed by accounting differences:

* energy is charged through the shared :class:`repro.radio.energy.EnergyLedger`,
* delay is measured from the moment the *original source* broadcasts the first
  ADV for a data item to the moment each interested destination receives the
  DATA packet (Section 5.1.1),
* delivery bookkeeping records which (item, destination) pairs completed so
  delivery ratio can be reported for the failure scenarios.
"""

from repro.metrics.collector import MetricsCollector
from repro.metrics.delay import DelayTracker
from repro.metrics.summary import DistributionSummary, MetricsSummary, summarize

__all__ = [
    "DelayTracker",
    "DistributionSummary",
    "MetricsCollector",
    "MetricsSummary",
    "summarize",
]
