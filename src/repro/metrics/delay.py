"""End-to-end delay tracking.

The paper measures delay "from the time the ADV packet is sent out by the
source to the time that the data packet is received at the destination" and
plots the average across all packets.  :class:`DelayTracker` records the ADV
time once per data item (at the original source) and one delivery time per
interested destination.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.metrics.summary import DistributionSummary, summarize


class DelayTracker:
    """Records origination and delivery times for data items."""

    def __init__(self) -> None:
        self._origin_times: Dict[str, float] = {}
        self._deliveries: Dict[Tuple[str, int], float] = {}

    # -------------------------------------------------------------- recording

    def record_origin(self, item_id: str, time_ms: float) -> None:
        """Record that the source broadcast the first ADV for *item_id*."""
        if item_id in self._origin_times:
            return
        self._origin_times[item_id] = time_ms

    def record_delivery(self, item_id: str, destination: int, time_ms: float) -> None:
        """Record that *destination* received the data for *item_id*.

        Only the first delivery per (item, destination) pair counts; duplicate
        receptions (which should not happen, but the metric must not hide
        them) are ignored for delay purposes.
        """
        key = (item_id, destination)
        if key in self._deliveries:
            return
        if item_id not in self._origin_times:
            raise ValueError(f"delivery recorded before origin for item {item_id!r}")
        self._deliveries[key] = time_ms

    # ---------------------------------------------------------------- queries

    @property
    def items_originated(self) -> int:
        """Number of distinct data items originated."""
        return len(self._origin_times)

    @property
    def deliveries_completed(self) -> int:
        """Number of (item, destination) deliveries recorded."""
        return len(self._deliveries)

    def delay_of(self, item_id: str, destination: int) -> Optional[float]:
        """Delay of a specific delivery, or ``None`` if not delivered."""
        delivered_at = self._deliveries.get((item_id, destination))
        if delivered_at is None:
            return None
        return delivered_at - self._origin_times[item_id]

    def all_delays(self) -> List[float]:
        """Every recorded per-delivery delay."""
        return [
            time_ms - self._origin_times[item_id]
            for (item_id, _dest), time_ms in self._deliveries.items()
        ]

    def summary(self) -> DistributionSummary:
        """Distribution summary of all per-delivery delays."""
        return summarize(self.all_delays())

    @property
    def average_delay_ms(self) -> float:
        """Mean per-delivery delay (0 when nothing was delivered)."""
        delays = self.all_delays()
        return sum(delays) / len(delays) if delays else 0.0

    def merge(self, other: "DelayTracker", item_prefix: str = "") -> None:
        """Fold another tracker's recordings into this one.

        Args:
            other: The tracker to absorb (left untouched).
            item_prefix: Prepended to every absorbed item id.  Shard merging
                uses the shard's job key so items from different runs (which
                reuse ids like ``"item-0"``) never collide.
        """
        for item_id, time_ms in other._origin_times.items():
            self.record_origin(item_prefix + item_id, time_ms)
        for (item_id, destination), time_ms in other._deliveries.items():
            self.record_delivery(item_prefix + item_id, destination, time_ms)

    def undelivered(self, expected: Dict[str, List[int]]) -> List[Tuple[str, int]]:
        """Which expected (item, destination) pairs never completed.

        Args:
            expected: Mapping of item id to the destinations that wanted it.
        """
        missing = []
        for item_id, destinations in expected.items():
            for dest in destinations:
                if (item_id, dest) not in self._deliveries:
                    missing.append((item_id, dest))
        return missing
