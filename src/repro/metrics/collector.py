"""The metrics collector shared by every experiment run."""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Tuple

from repro.metrics.delay import DelayTracker
from repro.metrics.summary import DistributionSummary, MetricsSummary
from repro.radio.energy import EnergyLedger


class MetricsCollector:
    """Aggregates energy, delay, delivery and traffic counters for one run.

    The energy ledger and delay tracker are owned by the collector; the
    network charges energy and the protocol nodes record deliveries through
    the collector, so SPIN and SPMS are measured identically.
    """

    def __init__(self) -> None:
        self.energy = EnergyLedger()
        self.delay = DelayTracker()
        self.packets_sent: Counter = Counter()
        self.packets_received: Counter = Counter()
        self.packets_dropped: Counter = Counter()
        self.expected_deliveries: Dict[str, List[int]] = defaultdict(list)
        self.items_generated = 0

    # --------------------------------------------------------------- traffic

    def record_send(self, packet_type: str) -> None:
        """Count a packet transmission by type (``"ADV"``, ``"REQ"``, ``"DATA"``)."""
        self.packets_sent[packet_type] += 1

    def record_receive(self, packet_type: str) -> None:
        """Count a packet reception by type."""
        self.packets_received[packet_type] += 1

    def record_drop(self, reason: str) -> None:
        """Count a dropped packet by reason (failed receiver, no route, ...)."""
        self.packets_dropped[reason] += 1

    # -------------------------------------------------------------- data flow

    def record_item_generated(self, item_id: str, time_ms: float, interested: List[int]) -> None:
        """Register a new data item and the destinations expected to get it."""
        self.items_generated += 1
        self.delay.record_origin(item_id, time_ms)
        self.expected_deliveries[item_id] = list(interested)

    def record_delivery(self, item_id: str, destination: int, time_ms: float) -> None:
        """Record a completed delivery."""
        self.delay.record_delivery(item_id, destination, time_ms)

    # ---------------------------------------------------------------- merging

    def merge(self, other: "MetricsCollector", item_prefix: str = "") -> None:
        """Fold another collector's counters into this one.

        The sweep executor uses this to combine per-shard metrics into one
        network-wide view: energy ledgers add, delay recordings concatenate
        and traffic counters sum.  *item_prefix* (typically the shard's job
        key plus ``"/"``) namespaces item ids so shards that reuse the same
        workload ids do not collide.
        """
        self.energy.merge(other.energy)
        self.delay.merge(other.delay, item_prefix=item_prefix)
        self.packets_sent.update(other.packets_sent)
        self.packets_received.update(other.packets_received)
        self.packets_dropped.update(other.packets_dropped)
        for item_id, destinations in other.expected_deliveries.items():
            self.expected_deliveries[item_prefix + item_id].extend(destinations)
        self.items_generated += other.items_generated

    # ---------------------------------------------------------------- results

    @property
    def total_energy_uj(self) -> float:
        """Network-wide energy consumption (microjoules)."""
        return self.energy.total

    @property
    def energy_per_item_uj(self) -> float:
        """Total energy divided by the number of generated data items.

        This is the paper's energy metric ("total energy consumption ...
        divided by the total number of packets").
        """
        if self.items_generated == 0:
            return 0.0
        return self.energy.total / self.items_generated

    @property
    def average_delay_ms(self) -> float:
        """Mean end-to-end delay across all deliveries."""
        return self.delay.average_delay_ms

    def delay_summary(self) -> DistributionSummary:
        """Distribution of per-delivery delays."""
        return self.delay.summary()

    def summarize(self) -> MetricsSummary:
        """Reduce this collector to its compact, mergeable summary.

        Workers call this in-process so only the O(1) summary — not the
        O(deliveries) collector — crosses the IPC boundary.
        """
        return MetricsSummary.from_collector(self)

    @property
    def expected_delivery_count(self) -> int:
        """How many (item, destination) deliveries the workload expected."""
        return sum(len(dests) for dests in self.expected_deliveries.values())

    @property
    def delivery_ratio(self) -> float:
        """Fraction of expected deliveries that completed (1.0 when nothing
        was expected)."""
        expected = self.expected_delivery_count
        if expected == 0:
            return 1.0
        return self.delay.deliveries_completed / expected

    def undelivered(self) -> List[Tuple[str, int]]:
        """Expected deliveries that never completed."""
        return self.delay.undelivered(self.expected_deliveries)

    def energy_breakdown(self) -> Dict[str, float]:
        """Energy per ledger category (tx / rx / routing)."""
        return self.energy.per_category

    def traffic_summary(self) -> Dict[str, Dict[str, int]]:
        """Copy of the traffic counters."""
        return {
            "sent": dict(self.packets_sent),
            "received": dict(self.packets_received),
            "dropped": dict(self.packets_dropped),
        }
