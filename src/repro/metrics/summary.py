"""Small statistics helpers shared by the metric collectors and benchmarks."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class DistributionSummary:
    """Summary statistics of a sample.

    Attributes:
        count: Number of observations.
        mean: Arithmetic mean (0 for an empty sample).
        minimum: Smallest observation (0 for an empty sample).
        maximum: Largest observation (0 for an empty sample).
        stddev: Population standard deviation (0 for fewer than 2 samples).
        median: 50th percentile (0 for an empty sample).
    """

    count: int
    mean: float
    minimum: float
    maximum: float
    stddev: float
    median: float


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of an already sorted sample.

    Args:
        sorted_values: Sample sorted ascending (must be non-empty).
        q: Percentile in ``[0, 100]``.
    """
    if not sorted_values:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (q / 100.0) * (len(sorted_values) - 1)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return sorted_values[int(rank)]
    weight = rank - lower
    return sorted_values[lower] * (1.0 - weight) + sorted_values[upper] * weight


def summarize(values: Iterable[float]) -> DistributionSummary:
    """Compute :class:`DistributionSummary` for *values*."""
    data = sorted(values)
    if not data:
        return DistributionSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    count = len(data)
    mean = sum(data) / count
    variance = sum((x - mean) ** 2 for x in data) / count
    return DistributionSummary(
        count=count,
        mean=mean,
        minimum=data[0],
        maximum=data[-1],
        stddev=math.sqrt(variance),
        median=percentile(data, 50.0),
    )
