"""Statistics helpers and the compact per-run metrics summary.

:class:`DistributionSummary` condenses a sample into its headline statistics;
:class:`MetricsSummary` condenses a whole
:class:`~repro.metrics.collector.MetricsCollector` into the counters the
results layer needs.  Both are small, frozen, JSON-round-trippable and —
crucially for the parallel executor — *mergeable*: worker processes reduce
their collector to a summary in-process and ship only the summary over IPC,
so the per-job payload is O(1) instead of O(deliveries).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Sequence


def _strict_fields(cls, data: Mapping[str, Any], what: str) -> Dict[str, Any]:
    """Validate *data* against the dataclass fields of *cls* (typo protection)."""
    if not isinstance(data, Mapping):
        raise ValueError(f"{what} must be a mapping, got {type(data).__name__}")
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(f"unknown {what} keys {unknown}; known keys: {sorted(known)}")
    return dict(data)


@dataclass(frozen=True)
class DistributionSummary:
    """Summary statistics of a sample.

    Attributes:
        count: Number of observations.
        mean: Arithmetic mean (0 for an empty sample).
        minimum: Smallest observation (0 for an empty sample).
        maximum: Largest observation (0 for an empty sample).
        stddev: Population standard deviation (0 for fewer than 2 samples).
        median: 50th percentile (0 for an empty sample).
    """

    count: int
    mean: float
    minimum: float
    maximum: float
    stddev: float
    median: float

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dictionary representation."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DistributionSummary":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        return cls(**_strict_fields(cls, data, "distribution summary"))

    @classmethod
    def empty(cls) -> "DistributionSummary":
        """The summary of an empty sample."""
        return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)

    def merge(self, other: "DistributionSummary") -> "DistributionSummary":
        """Summary of the union of the two underlying samples.

        Count, minimum and maximum are exact.  Mean and standard deviation
        are combined through the count-weighted moments, which agrees with
        summarising the concatenated sample up to floating-point rounding.
        The *median* of a union is not recoverable from two summaries, so the
        merged median is the count-weighted mean of the two medians — an
        explicit approximation, adequate for the sweep-wide aggregate view
        (per-run records keep their exact medians).
        """
        if self.count == 0:
            return other
        if other.count == 0:
            return self
        count = self.count + other.count
        mean = (self.mean * self.count + other.mean * other.count) / count
        second_moment = (
            self.count * (self.stddev**2 + self.mean**2)
            + other.count * (other.stddev**2 + other.mean**2)
        ) / count
        variance = max(0.0, second_moment - mean**2)
        return DistributionSummary(
            count=count,
            mean=mean,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
            stddev=math.sqrt(variance),
            median=(self.median * self.count + other.median * other.count) / count,
        )


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of an already sorted sample.

    Args:
        sorted_values: Sample sorted ascending (must be non-empty).
        q: Percentile in ``[0, 100]``.
    """
    if not sorted_values:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (q / 100.0) * (len(sorted_values) - 1)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return sorted_values[int(rank)]
    low, high = sorted_values[lower], sorted_values[upper]
    if low == high:
        # Interpolating between equal values must return that value exactly.
        # The weighted form below does for normal floats (x*0.5 + x*0.5 == x)
        # but not for subnormals, where the halving rounds.
        return low
    weight = rank - lower
    return low * (1.0 - weight) + high * weight


def summarize(values: Iterable[float]) -> DistributionSummary:
    """Compute :class:`DistributionSummary` for *values*."""
    data = sorted(values)
    if not data:
        return DistributionSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    count = len(data)
    mean = sum(data) / count
    variance = sum((x - mean) ** 2 for x in data) / count
    return DistributionSummary(
        count=count,
        mean=mean,
        minimum=data[0],
        maximum=data[-1],
        stddev=math.sqrt(variance),
        median=percentile(data, 50.0),
    )


# ---------------------------------------------------------- metrics summary


def _merge_number_maps(a: Mapping[str, float], b: Mapping[str, float]) -> Dict[str, float]:
    merged = dict(a)
    for key, value in b.items():
        merged[key] = merged.get(key, 0) + value
    return merged


@dataclass(frozen=True)
class MetricsSummary:
    """Compact, mergeable reduction of one run's :class:`MetricsCollector`.

    This is the payload the parallel executor ships between processes and the
    metrics half of every :class:`~repro.results.RunRecord`: traffic counters,
    the energy breakdown, delivery bookkeeping and the delay distribution —
    everything the reports need, nothing proportional to the traffic volume.

    Attributes:
        items_generated: Data items originated by the workload.
        expected_deliveries: (item, destination) pairs the workload expected.
        deliveries_completed: How many of those completed.
        total_energy_uj: Network-wide energy (microjoules).
        energy_breakdown_uj: Energy per ledger category (tx / rx / routing).
        packets_sent: Transmissions per packet type.
        packets_received: Receptions per packet type.
        packets_dropped: Drops per reason.
        delay: Distribution of per-delivery end-to-end delays (ms).
    """

    items_generated: int = 0
    expected_deliveries: int = 0
    deliveries_completed: int = 0
    total_energy_uj: float = 0.0
    energy_breakdown_uj: Dict[str, float] = field(default_factory=dict)
    packets_sent: Dict[str, int] = field(default_factory=dict)
    packets_received: Dict[str, int] = field(default_factory=dict)
    packets_dropped: Dict[str, int] = field(default_factory=dict)
    delay: DistributionSummary = field(default_factory=DistributionSummary.empty)

    # ------------------------------------------------------- derived metrics

    @property
    def energy_per_item_uj(self) -> float:
        """Total energy / items generated — the paper's energy metric."""
        if self.items_generated == 0:
            return 0.0
        return self.total_energy_uj / self.items_generated

    @property
    def average_delay_ms(self) -> float:
        """Mean end-to-end delay over completed deliveries."""
        return self.delay.mean

    @property
    def delivery_ratio(self) -> float:
        """Completed / expected deliveries (1.0 when nothing was expected)."""
        if self.expected_deliveries == 0:
            return 1.0
        return self.deliveries_completed / self.expected_deliveries

    # ---------------------------------------------------------- construction

    @classmethod
    def from_collector(cls, collector) -> "MetricsSummary":
        """Reduce a :class:`~repro.metrics.collector.MetricsCollector`.

        This is the in-process reduction workers perform before shipping
        results over IPC — the summary is exact for every field (the delay
        distribution is computed from the raw per-delivery delays).
        """
        return cls(
            items_generated=collector.items_generated,
            expected_deliveries=collector.expected_delivery_count,
            deliveries_completed=collector.delay.deliveries_completed,
            total_energy_uj=collector.total_energy_uj,
            energy_breakdown_uj=collector.energy_breakdown(),
            packets_sent=dict(collector.packets_sent),
            packets_received=dict(collector.packets_received),
            packets_dropped=dict(collector.packets_dropped),
            delay=collector.delay_summary(),
        )

    # --------------------------------------------------------------- merging

    def merge(self, other: "MetricsSummary") -> "MetricsSummary":
        """Fold another run's summary into a combined view (returns a new one).

        Replaces collector-level merging on the executor's hot path: counters,
        energy and delivery counts combine exactly as
        :meth:`MetricsCollector.merge` would; the delay distribution combines
        through :meth:`DistributionSummary.merge` (exact count/min/max,
        moment-combined mean/stddev, approximated median).
        """
        return MetricsSummary(
            items_generated=self.items_generated + other.items_generated,
            expected_deliveries=self.expected_deliveries + other.expected_deliveries,
            deliveries_completed=self.deliveries_completed + other.deliveries_completed,
            total_energy_uj=self.total_energy_uj + other.total_energy_uj,
            energy_breakdown_uj=_merge_number_maps(
                self.energy_breakdown_uj, other.energy_breakdown_uj
            ),
            packets_sent=_merge_number_maps(self.packets_sent, other.packets_sent),
            packets_received=_merge_number_maps(
                self.packets_received, other.packets_received
            ),
            packets_dropped=_merge_number_maps(
                self.packets_dropped, other.packets_dropped
            ),
            delay=self.delay.merge(other.delay),
        )

    # -------------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dictionary representation (nested delay summary)."""
        data = dataclasses.asdict(self)
        data["delay"] = self.delay.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetricsSummary":
        """Inverse of :meth:`to_dict`; rejects unknown keys at both levels."""
        payload = _strict_fields(cls, data, "metrics summary")
        if "delay" in payload:
            payload["delay"] = DistributionSummary.from_dict(payload["delay"])
        return cls(**payload)
