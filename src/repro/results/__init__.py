"""The unified results API.

Everything a run produces flows through one canonical, schema-versioned type:

* :class:`RunRecord` — one run's outcome: provenance (key, spec fingerprint,
  seed, grid axes), a compact :class:`MetricsSummary`, routing/fault
  bookkeeping and wall time.  JSON round-trip with strict validation.
* :class:`MetricsSummary` / :class:`DistributionSummary` — the compact,
  *mergeable* metrics reduction workers compute in-process (defined in
  :mod:`repro.metrics.summary`, re-exported here).
* :class:`RunStore` — a run directory of sharded JSONL record logs with
  ``query(protocol=..., metric=...)`` and optional lazy raw-metrics blobs.
* :class:`ResultCache` — the content-addressed random-access companion
  (``--resume``), keyed by :func:`spec_fingerprint`.
* :class:`ScenarioResult` / :class:`SweepResult` — thin flat/tabular views
  kept for the historical API surface.

``repro.experiments.results`` re-exports these names for backwards
compatibility; new code should import from :mod:`repro.results`.
"""

from repro.metrics.summary import DistributionSummary, MetricsSummary
from repro.results.cache import CACHE_SCHEMA_VERSION, ResultCache, spec_fingerprint
from repro.results.failures import (
    ATTEMPT_OUTCOMES,
    FAILURE_SCHEMA_KEY,
    FAILURE_SCHEMA_VERSION,
    FailureValidationError,
    JobAttempt,
    JobFailure,
)
from repro.results.legacy import ScenarioResult, SweepResult
from repro.results.record import (
    CANONICAL_SCHEMA_VERSION,
    RECORD_SCHEMA_KEY,
    RESULTS_SCHEMA_VERSION,
    SUPPORTED_RESULTS_SCHEMA_VERSIONS,
    RecordValidationError,
    RunRecord,
)
from repro.results.store import RunStore, RunStoreError

__all__ = [
    "ATTEMPT_OUTCOMES",
    "CACHE_SCHEMA_VERSION",
    "CANONICAL_SCHEMA_VERSION",
    "DistributionSummary",
    "FAILURE_SCHEMA_KEY",
    "FAILURE_SCHEMA_VERSION",
    "FailureValidationError",
    "JobAttempt",
    "JobFailure",
    "MetricsSummary",
    "RECORD_SCHEMA_KEY",
    "RESULTS_SCHEMA_VERSION",
    "SUPPORTED_RESULTS_SCHEMA_VERSIONS",
    "RecordValidationError",
    "ResultCache",
    "RunRecord",
    "RunStore",
    "RunStoreError",
    "ScenarioResult",
    "SweepResult",
    "spec_fingerprint",
]
