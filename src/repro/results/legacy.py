"""Flat result views kept for the historical API surface.

:class:`ScenarioResult` predates :class:`~repro.results.record.RunRecord` and
survives as a thin *flat view* of one: every field is derivable from a record
(:meth:`ScenarioResult.from_record`), and the runner's ``run()`` keeps
returning it so single-run callers see the stable, flat metric layout.

:class:`SweepResult` is the tabular adapter over a set of per-run results.
It is value-agnostic: series may hold either :class:`ScenarioResult` views or
:class:`RunRecord` objects, because both expose the same metric names
(attributes on the former, delegating properties on the latter).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class ScenarioResult:
    """Flat view of one simulation run's outcome.

    Attributes:
        protocol: Protocol name ("spms", "spin", ...).
        scenario: Scenario name (for provenance in reports).
        num_nodes: Number of nodes simulated.
        transmission_radius_m: Maximum transmission radius used.
        items_generated: Data items originated by the workload.
        expected_deliveries: Number of (item, destination) pairs the workload
            expected to complete.
        deliveries_completed: How many of those completed.
        total_energy_uj: Network-wide energy (microjoules).
        energy_per_item_uj: Total energy / items generated — the paper's
            energy metric.
        average_delay_ms: Mean end-to-end delay over completed deliveries.
        delivery_ratio: Completed / expected deliveries.
        energy_breakdown_uj: Energy per category (tx / rx / routing).
        packets_sent: Transmissions per packet type.
        packets_dropped: Drops per reason.
        routing_rebuilds: How many times the routing tables were (re)built.
        routing_energy_uj: Energy charged to route formation/maintenance.
        sim_time_ms: Simulated time when the run finished.
        failures_injected: Number of transient failures injected.
    """

    protocol: str
    scenario: str
    num_nodes: int
    transmission_radius_m: float
    items_generated: int
    expected_deliveries: int
    deliveries_completed: int
    total_energy_uj: float
    energy_per_item_uj: float
    average_delay_ms: float
    delivery_ratio: float
    energy_breakdown_uj: Dict[str, float] = field(default_factory=dict)
    packets_sent: Dict[str, int] = field(default_factory=dict)
    packets_dropped: Dict[str, int] = field(default_factory=dict)
    routing_rebuilds: int = 0
    routing_energy_uj: float = 0.0
    sim_time_ms: float = 0.0
    failures_injected: int = 0

    @classmethod
    def from_record(cls, record) -> "ScenarioResult":
        """Flatten a :class:`~repro.results.record.RunRecord` into this view."""
        return cls(
            protocol=record.protocol,
            scenario=record.scenario,
            num_nodes=record.num_nodes,
            transmission_radius_m=record.transmission_radius_m,
            items_generated=record.items_generated,
            expected_deliveries=record.expected_deliveries,
            deliveries_completed=record.deliveries_completed,
            total_energy_uj=record.total_energy_uj,
            energy_per_item_uj=record.energy_per_item_uj,
            average_delay_ms=record.average_delay_ms,
            delivery_ratio=record.delivery_ratio,
            energy_breakdown_uj=dict(record.energy_breakdown_uj),
            packets_sent=dict(record.packets_sent),
            packets_dropped=dict(record.packets_dropped),
            routing_rebuilds=record.routing_rebuilds,
            routing_energy_uj=record.routing_energy_uj,
            sim_time_ms=record.sim_time_ms,
            failures_injected=record.failures_injected,
        )

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary representation (used by reports and benchmarks)."""
        return {
            "protocol": self.protocol,
            "scenario": self.scenario,
            "num_nodes": self.num_nodes,
            "transmission_radius_m": self.transmission_radius_m,
            "items_generated": self.items_generated,
            "expected_deliveries": self.expected_deliveries,
            "deliveries_completed": self.deliveries_completed,
            "total_energy_uj": self.total_energy_uj,
            "energy_per_item_uj": self.energy_per_item_uj,
            "average_delay_ms": self.average_delay_ms,
            "delivery_ratio": self.delivery_ratio,
            "routing_rebuilds": self.routing_rebuilds,
            "routing_energy_uj": self.routing_energy_uj,
            "sim_time_ms": self.sim_time_ms,
            "failures_injected": self.failures_injected,
        }

    def to_dict(self) -> Dict[str, object]:
        """Complete, loss-free dictionary representation (JSON-safe)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioResult":
        """Rebuild a result from :meth:`to_dict` output."""
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def to_json(self) -> str:
        """Canonical JSON rendering (stable key order, byte-reproducible)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioResult":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


@dataclass
class SweepResult:
    """Results of sweeping one parameter for several series.

    A *series* is usually a protocol; matrices with secondary axes label
    series ``"spms[placement=random]"`` so every grid line stays visible.

    Attributes:
        parameter: Name of the swept parameter (e.g. ``"num_nodes"``).
        values: The swept values, in order.
        results: ``results[series]`` is that series' runs in sweep order;
            entries may be :class:`ScenarioResult` views or
            :class:`~repro.results.record.RunRecord` objects.
    """

    parameter: str
    values: List[float] = field(default_factory=list)
    results: Dict[str, List] = field(default_factory=dict)

    def add(self, series: str, value: float, result) -> None:
        """Record one run."""
        if value not in self.values:
            self.values.append(value)
        self.results.setdefault(series, []).append(result)

    def series(self, series: str, metric: str) -> List[float]:
        """Extract one metric across the sweep for one series."""
        return [getattr(r, metric) for r in self.results.get(series, [])]

    def _value_of(self, result, index: int):
        """The swept-parameter value a stored result belongs to.

        Records carry their grid coordinates (``axes``); flat results expose
        config axes (``num_nodes``, ``transmission_radius_m``) as attributes.
        When neither identifies the value, fall back to positional alignment.
        """
        axes = getattr(result, "axes", None)
        if axes and self.parameter in axes:
            return axes[self.parameter]
        value = getattr(result, self.parameter, None)
        if value is not None:
            return value
        return self.values[index] if index < len(self.values) else None

    def _series_by_value(self, results: List) -> Dict[object, object]:
        """Map each swept value to one series result.

        Alignment is by value, so series with holes land in the right rows.
        When value matching fails for the *entire* series — hand-assembled
        sweeps whose results do not carry the swept parameter (e.g. synthetic
        fixtures swept over an index) — fall back to positional alignment,
        the historical behaviour, instead of silently emptying the table.
        """
        by_value: Dict[object, object] = {}
        for index, result in enumerate(results):
            by_value.setdefault(self._value_of(result, index), result)
        if results and not any(value in by_value for value in self.values):
            return {
                value: results[index]
                for index, value in enumerate(self.values)
                if index < len(results)
            }
        return by_value

    def rows(self, metric: str) -> List[Dict[str, object]]:
        """Tabular view: one row per swept value, one column per series.

        Series with no run at a value (a protocol that skipped a point, a
        fleet of heterogeneous specs) simply omit that cell — consumers must
        tolerate sparse rows, and :meth:`format_table` renders them as ``-``.
        Results lacking *metric* are likewise skipped rather than raising.
        """
        aligned = {
            series: self._series_by_value(results)
            for series, results in self.results.items()
        }
        rows = []
        for value in self.values:
            row: Dict[str, object] = {self.parameter: value}
            for series, by_value in aligned.items():
                match = by_value.get(value)
                if match is None:
                    continue
                metric_value = getattr(match, metric, None)
                if metric_value is not None:
                    row[series] = metric_value
            rows.append(row)
        return rows

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dictionary representation of the whole sweep."""
        return {
            "parameter": self.parameter,
            "values": list(self.values),
            "results": {
                series: [r.to_dict() for r in results]
                for series, results in self.results.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SweepResult":
        """Rebuild a sweep from :meth:`to_dict` output.

        Entries carrying a run-record schema version are rebuilt as full
        :class:`~repro.results.record.RunRecord` objects; anything else is
        read as a flat :class:`ScenarioResult`, so sweeps serialized by
        either era round-trip.
        """
        from repro.results.record import RECORD_SCHEMA_KEY, RunRecord

        sweep = cls(parameter=data["parameter"], values=list(data["values"]))
        for series, results in data["results"].items():
            sweep.results[series] = [
                RunRecord.from_dict(r)
                if isinstance(r, dict) and RECORD_SCHEMA_KEY in r
                else ScenarioResult.from_dict(r)
                for r in results
            ]
        return sweep

    def format_table(self, metric: str, precision: int = 3) -> str:
        """Readable fixed-width table; missing cells render as ``-``."""
        series_names = sorted(self.results)
        width = max([14] + [len(name) for name in series_names])
        header = f"{self.parameter:>20} " + " ".join(
            f"{name:>{width}}" for name in series_names
        )
        lines = [header, "-" * len(header)]
        for row in self.rows(metric):
            cells = [f"{str(row[self.parameter]):>20}"]
            for name in series_names:
                value = row.get(name)
                cells.append(
                    f"{value:>{width}.{precision}f}"
                    if isinstance(value, (int, float))
                    else f"{'-':>{width}}"
                )
            lines.append(" ".join(cells))
        return "\n".join(lines)
