"""Structured job-failure records and their sidecar serialization.

When the supervised executor (:mod:`repro.experiments.supervisor`) gives up
on a job — every attempt raised, timed out, or took its worker down — the job
does not abort the sweep.  It becomes a :class:`JobFailure`: the job's
identity, plus one :class:`JobAttempt` per failed try (outcome, exception
text, elapsed wall time).  Failures are **not** run records: they are
persisted to a ``failures.jsonl`` sidecar in the run directory
(:meth:`repro.results.store.RunStore.append_failure`), so the canonical
:class:`~repro.results.record.RunRecord` bytes — and every digest pinned
over them — stay untouched by fault-tolerance bookkeeping.

Like records, failures are schema-versioned and round-trip strictly through
JSON: unknown keys and unsupported versions are rejected loudly, never
silently dropped.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

#: Version of the serialized job-failure layout (``failures.jsonl`` lines).
#: Bumped whenever the serialized shape changes; writes always emit this.
FAILURE_SCHEMA_VERSION = 1

#: Key carrying the schema version in serialized failures.
FAILURE_SCHEMA_KEY = "failure_schema_version"

#: Attempt outcomes the supervisor records.
ATTEMPT_OUTCOMES = ("raised", "timeout", "worker-crash")


class FailureValidationError(ValueError):
    """A serialized job failure failed validation."""


@dataclass(frozen=True)
class JobAttempt:
    """One failed try at a job.

    Attributes:
        attempt: 1-based attempt number.
        outcome: ``"raised"`` (the job raised in the worker), ``"timeout"``
            (the wall-clock budget elapsed and the worker was killed) or
            ``"worker-crash"`` (the worker process died under the job).
        detail: Human-readable specifics — the exception text, the timeout
            budget, or the worker's exit code.
        elapsed_s: Wall-clock seconds this attempt consumed.
    """

    attempt: int
    outcome: str
    detail: str
    elapsed_s: float

    def __post_init__(self) -> None:
        if self.outcome not in ATTEMPT_OUTCOMES:
            raise FailureValidationError(
                f"unknown attempt outcome {self.outcome!r}; "
                f"expected one of {ATTEMPT_OUTCOMES}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "attempt": self.attempt,
            "outcome": self.outcome,
            "detail": self.detail,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JobAttempt":
        _reject_unknown_keys(
            payload, ("attempt", "outcome", "detail", "elapsed_s"), "attempt"
        )
        try:
            return cls(
                attempt=int(payload["attempt"]),
                outcome=str(payload["outcome"]),
                detail=str(payload["detail"]),
                elapsed_s=float(payload["elapsed_s"]),
            )
        except KeyError as exc:
            raise FailureValidationError(f"attempt missing key {exc}") from exc


@dataclass(frozen=True)
class JobFailure:
    """A job the supervisor quarantined after exhausting its attempts.

    Attributes:
        key: The job's stable sweep key (``"fig06/num_nodes=64/spin"``).
        index: The job's position in the matrix expansion order.
        matrix: Name of the matrix (or batch) the job came from.
        protocol: Protocol the job would have run.
        attempts: Every failed attempt, in order.
    """

    key: str
    index: int
    matrix: str
    protocol: str
    attempts: Tuple[JobAttempt, ...] = field(default_factory=tuple)

    @property
    def attempt_count(self) -> int:
        return len(self.attempts)

    @property
    def last_outcome(self) -> str:
        """Outcome of the final attempt (what ultimately gave up)."""
        return self.attempts[-1].outcome if self.attempts else "raised"

    @property
    def last_detail(self) -> str:
        return self.attempts[-1].detail if self.attempts else ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            FAILURE_SCHEMA_KEY: FAILURE_SCHEMA_VERSION,
            "key": self.key,
            "index": self.index,
            "matrix": self.matrix,
            "protocol": self.protocol,
            "attempts": [attempt.to_dict() for attempt in self.attempts],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JobFailure":
        version = payload.get(FAILURE_SCHEMA_KEY)
        if version != FAILURE_SCHEMA_VERSION:
            raise FailureValidationError(
                f"unsupported failure schema version {version!r}; "
                f"this build reads {FAILURE_SCHEMA_VERSION}"
            )
        _reject_unknown_keys(
            payload,
            (FAILURE_SCHEMA_KEY, "key", "index", "matrix", "protocol", "attempts"),
            "failure",
        )
        attempts = payload.get("attempts", [])
        if not isinstance(attempts, (list, tuple)):
            raise FailureValidationError(
                f"failure 'attempts' must be a list, got {type(attempts).__name__}"
            )
        try:
            return cls(
                key=str(payload["key"]),
                index=int(payload["index"]),
                matrix=str(payload["matrix"]),
                protocol=str(payload["protocol"]),
                attempts=tuple(JobAttempt.from_dict(a) for a in attempts),
            )
        except KeyError as exc:
            raise FailureValidationError(f"failure missing key {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "JobFailure":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise FailureValidationError(f"failure is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise FailureValidationError(
                f"failure must be a JSON object, got {type(payload).__name__}"
            )
        return cls.from_dict(payload)


def _reject_unknown_keys(
    payload: Mapping[str, Any], known: Tuple[str, ...], what: str
) -> None:
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise FailureValidationError(f"{what} has unknown keys: {', '.join(unknown)}")
