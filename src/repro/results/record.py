"""The canonical run record.

A :class:`RunRecord` is the single, schema-versioned description of one
completed simulation run: provenance (job key, spec fingerprint, seed, grid
coordinates), a compact :class:`~repro.metrics.summary.MetricsSummary`, the
routing/fault bookkeeping and the measured wall time.  Every producer (the
runner, the executor workers) emits RunRecords and every consumer (sweeps,
stores, caches, reports, figures) reads them; the historical
``ScenarioResult`` is a thin flat view derived from a record.

Records round-trip losslessly through JSON (:meth:`RunRecord.to_dict` /
:meth:`RunRecord.from_dict`) with unknown-key and bad-version rejection.
:meth:`RunRecord.canonical_json` renders the *deterministic* portion of a
record — everything except the measured wall time and the raw-blob reference
— and is what byte-identity comparisons (parallel vs serial execution) use.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.metrics.summary import MetricsSummary

#: Version of the serialized run-record / run-store schema.  Bumped whenever
#: the serialized layout changes; writes always emit this version.  History:
#:
#: * 1 — initial canonical record; stores kept the fingerprint index inside
#:   ``manifest.json`` and keyed raw blobs by spec fingerprint.
#: * 2 — store layout rework: append-only ``index.jsonl`` sidecar index,
#:   advisory append locking, torn-tail quarantine, raw blobs keyed by the
#:   record key.  The record *field set* is unchanged, so v1 records load
#:   transparently (see :data:`SUPPORTED_RESULTS_SCHEMA_VERSIONS`).
RESULTS_SCHEMA_VERSION = 2

#: Serialized versions :meth:`RunRecord.from_dict` accepts.  v1 is readable
#: because v2 changed only the surrounding store layout, not the record
#: fields — migrated legacy shards (and old cache entries) keep loading.
SUPPORTED_RESULTS_SCHEMA_VERSIONS = (1, 2)

#: Version stamped into :meth:`RunRecord.canonical_dict`.  The canonical
#: rendering is the byte-identity contract — ``repro bench --compare``
#: digests and the differential-test pins are stated over it — so it only
#: bumps when the *deterministic result content* changes.  The v1 -> v2
#: serialization bump changed no result content, so the canonical form (and
#: every pinned digest) stays at 1.
CANONICAL_SCHEMA_VERSION = 1

#: Key carrying the schema version in serialized records.
RECORD_SCHEMA_KEY = "schema_version"

#: Fields excluded from :meth:`RunRecord.canonical_dict`: they describe the
#: *execution* (how long it took, where the raw blob landed), not the result,
#: and legitimately differ between byte-identical runs.
VOLATILE_FIELDS = ("wall_time_s", "raw_ref")


class RecordValidationError(ValueError):
    """A serialized run record failed validation."""


@dataclass(frozen=True)
class RunRecord:
    """Outcome of one simulation run — the one results type.

    Attributes:
        key: Stable run identity (the sweep job key, or a batch-run name).
        protocol: Protocol that ran ("spms", "spin", ...).
        scenario: Scenario name (provenance in reports).
        spec_fingerprint: Content hash of the run's full scenario spec
            (:func:`repro.results.cache.spec_fingerprint`).
        seed: The master seed the run used.
        num_nodes: Number of nodes simulated.
        transmission_radius_m: Maximum transmission radius used.
        summary: Compact metrics summary (counters, energy, delay, delivery).
        axes: Grid coordinates of the run when it came from a matrix —
            including non-config axes such as ``placement`` — or free-form
            provenance for batch runs.
        routing_rebuilds: How many times the routing tables were (re)built.
        routing_energy_uj: Energy charged to route formation/maintenance.
        sim_time_ms: Simulated time when the run finished.
        failures_injected: Number of transient failures injected.
        wall_time_s: Measured wall-clock duration of the run (volatile).
        raw_ref: Store-relative reference to the optional raw-metrics blob
            (volatile; see :meth:`repro.results.store.RunStore.load_raw`).
    """

    key: str
    protocol: str
    scenario: str
    spec_fingerprint: str
    seed: int
    num_nodes: int
    transmission_radius_m: float
    summary: MetricsSummary
    axes: Dict[str, object] = field(default_factory=dict)
    routing_rebuilds: int = 0
    routing_energy_uj: float = 0.0
    sim_time_ms: float = 0.0
    failures_injected: int = 0
    wall_time_s: float = 0.0
    raw_ref: Optional[str] = None

    # ------------------------------------------------------- metric delegation
    #
    # The headline metrics live on the summary; exposing them as properties
    # lets every metric-by-name consumer (``SweepResult.series``, the report
    # tables, the claims helpers) read records and flat results identically.

    @property
    def items_generated(self) -> int:
        """Data items originated by the workload."""
        return self.summary.items_generated

    @property
    def expected_deliveries(self) -> int:
        """(item, destination) pairs the workload expected to complete."""
        return self.summary.expected_deliveries

    @property
    def deliveries_completed(self) -> int:
        """How many expected deliveries completed."""
        return self.summary.deliveries_completed

    @property
    def total_energy_uj(self) -> float:
        """Network-wide energy (microjoules)."""
        return self.summary.total_energy_uj

    @property
    def energy_per_item_uj(self) -> float:
        """Total energy / items generated — the paper's energy metric."""
        return self.summary.energy_per_item_uj

    @property
    def average_delay_ms(self) -> float:
        """Mean end-to-end delay over completed deliveries."""
        return self.summary.average_delay_ms

    @property
    def delivery_ratio(self) -> float:
        """Completed / expected deliveries."""
        return self.summary.delivery_ratio

    @property
    def energy_breakdown_uj(self) -> Dict[str, float]:
        """Energy per category (tx / rx / routing)."""
        return self.summary.energy_breakdown_uj

    @property
    def packets_sent(self) -> Dict[str, int]:
        """Transmissions per packet type."""
        return self.summary.packets_sent

    @property
    def packets_dropped(self) -> Dict[str, int]:
        """Drops per reason."""
        return self.summary.packets_dropped

    # -------------------------------------------------------- serialization

    def to_dict(self) -> Dict[str, object]:
        """Complete, loss-free, JSON-safe dictionary representation."""
        data: Dict[str, object] = {RECORD_SCHEMA_KEY: RESULTS_SCHEMA_VERSION}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if f.name == "summary":
                value = self.summary.to_dict()
            elif f.name == "axes":
                value = dict(value)
            data[f.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        """Inverse of :meth:`to_dict`.

        Raises:
            RecordValidationError: On a wrong/absent schema version, unknown
                keys at any level, or missing required fields.
        """
        if not isinstance(data, Mapping):
            raise RecordValidationError(
                f"run record must be a mapping, got {type(data).__name__}"
            )
        payload = dict(data)
        version = payload.pop(RECORD_SCHEMA_KEY, None)
        if version not in SUPPORTED_RESULTS_SCHEMA_VERSIONS:
            raise RecordValidationError(
                f"unsupported run-record schema version {version!r}; "
                f"this build reads versions "
                f"{sorted(SUPPORTED_RESULTS_SCHEMA_VERSIONS)}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise RecordValidationError(
                f"unknown run record keys {unknown}; known keys: {sorted(known)}"
            )
        if "summary" in payload:
            try:
                payload["summary"] = MetricsSummary.from_dict(payload["summary"])
            except ValueError as exc:
                raise RecordValidationError(f"invalid run record: {exc}") from exc
        try:
            return cls(**payload)
        except TypeError as exc:
            raise RecordValidationError(f"invalid run record: {exc}") from exc

    def to_json(self) -> str:
        """Canonical JSON rendering (stable key order, byte-reproducible)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunRecord":
        """Inverse of :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise RecordValidationError(f"run record is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def canonical_dict(self) -> Dict[str, object]:
        """:meth:`to_dict` minus the volatile execution fields.

        Two runs of the same spec must produce byte-identical canonical
        renderings regardless of worker count or machine load; the
        determinism regressions compare exactly this.
        """
        data = self.to_dict()
        for volatile in VOLATILE_FIELDS:
            data.pop(volatile, None)
        # The canonical form is versioned by the deterministic-content
        # contract, not the storage layout — see CANONICAL_SCHEMA_VERSION.
        data[RECORD_SCHEMA_KEY] = CANONICAL_SCHEMA_VERSION
        return data

    def canonical_json(self) -> str:
        """Stable JSON rendering of :meth:`canonical_dict`."""
        return json.dumps(self.canonical_dict(), sort_keys=True)

    # --------------------------------------------------------------- views

    def as_dict(self) -> Dict[str, object]:
        """Flat headline-metric view (used by reports and the CLI)."""
        return {
            "protocol": self.protocol,
            "scenario": self.scenario,
            "num_nodes": self.num_nodes,
            "transmission_radius_m": self.transmission_radius_m,
            "items_generated": self.items_generated,
            "expected_deliveries": self.expected_deliveries,
            "deliveries_completed": self.deliveries_completed,
            "total_energy_uj": self.total_energy_uj,
            "energy_per_item_uj": self.energy_per_item_uj,
            "average_delay_ms": self.average_delay_ms,
            "delivery_ratio": self.delivery_ratio,
            "routing_rebuilds": self.routing_rebuilds,
            "routing_energy_uj": self.routing_energy_uj,
            "sim_time_ms": self.sim_time_ms,
            "failures_injected": self.failures_injected,
        }

    def with_execution(
        self, wall_time_s: Optional[float] = None, raw_ref: Optional[str] = None
    ) -> "RunRecord":
        """A copy with the volatile execution fields replaced."""
        changes: Dict[str, object] = {}
        if wall_time_s is not None:
            changes["wall_time_s"] = wall_time_s
        if raw_ref is not None:
            changes["raw_ref"] = raw_ref
        return dataclasses.replace(self, **changes) if changes else self
