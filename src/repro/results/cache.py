"""Content-addressed result cache, now storing canonical run records.

The cache key of a run is the SHA-256 of a canonical JSON rendering of its
full :class:`~repro.experiments.scenarios.ScenarioSpec` (protocol, workload,
every configuration field, failure/mobility parameters and the derived seed)
together with :data:`CACHE_SCHEMA_VERSION`.  Two jobs with identical specs
share a cache entry; any parameter change — including the seed — yields a
different key, so ``--resume`` can never serve stale results for a modified
grid.

Entries hold the full :class:`~repro.results.record.RunRecord` dictionary, so
a cache hit restores the record exactly as the original run produced it
(wall time included — the time the run *originally* took).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.results.record import RecordValidationError, RunRecord

#: Bumped whenever the simulation semantics, the serialized spec layout or
#: the stored payload change in a way that invalidates previously cached
#: results (part of every cache key).  Version history:
#:
#: * 1 — ``dataclasses.asdict`` rendering of the spec; ``ScenarioResult``
#:   payloads.
#: * 2 — canonical :meth:`ScenarioSpec.to_dict` rendering (the spec gained
#:   ``placement``/``placement_options``, the configs gained ``model``/
#:   ``contention`` component selectors); ``ScenarioResult`` payloads.
#: * 3 — spec schema v2 (the spec gained free-form ``labels``) and entries
#:   now store :class:`RunRecord` payloads under a ``"record"`` key instead
#:   of flat ``ScenarioResult`` dictionaries under ``"result"``.  This was a
#:   deliberate one-shot invalidation of every v2 cache entry: old entries
#:   are simply never matched again and can be deleted at leisure.
CACHE_SCHEMA_VERSION = 3


def spec_fingerprint(spec) -> str:
    """Content hash (hex SHA-256) identifying a scenario spec.

    The fingerprint is the canonical serialized form of the spec
    (:meth:`ScenarioSpec.to_dict` — protocol, workload/placement and their
    options, the full :class:`SimulationConfig` including the seed, and the
    failure/mobility parameters) rendered as canonical JSON — the same
    dictionary layout ``repro run --spec`` consumes.  Values that are not
    JSON-native (e.g. custom workload objects) fall back to ``repr``, which
    keeps the key deterministic as long as the object's repr is.
    """
    payload = spec.to_dict() if hasattr(spec, "to_dict") else dataclasses.asdict(spec)
    description = {
        "schema": CACHE_SCHEMA_VERSION,
        "spec": payload,
    }
    text = json.dumps(description, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed, on-disk store of :class:`RunRecord` objects.

    This is the random-access companion to the append-ordered
    :class:`~repro.results.store.RunStore`: same record format, addressed by
    spec fingerprint for O(1) resume lookups instead of by completion order.

    Layout: ``<root>/<key[:2]>/<key>.json`` where *key* is
    :func:`spec_fingerprint` of the run's spec.  Each file holds the record
    dictionary plus a human-readable copy of the spec for debuggability.
    Writes are atomic (temp file + rename) so a crashed or killed sweep never
    leaves a truncated entry behind — ``--resume`` can trust whatever it finds.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        """Where the entry for *key* lives (whether or not it exists)."""
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[RunRecord]:
        """The cached record for *key*, or ``None`` on miss/corruption."""
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
            return RunRecord.from_dict(payload["record"])
        except (OSError, ValueError, KeyError, TypeError, RecordValidationError):
            return None

    def store(self, key: str, record: RunRecord, spec=None) -> Path:
        """Persist *record* under *key*; returns the entry path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload: Dict[str, object] = {"key": key, "record": record.to_dict()}
        if spec is not None:
            payload["spec"] = (
                spec.to_dict() if hasattr(spec, "to_dict") else dataclasses.asdict(spec)
            )
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, default=repr, indent=1))
        tmp.replace(path)
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
