"""On-disk run store: sharded JSONL of run records plus optional raw blobs.

A :class:`RunStore` owns one *run directory*::

    <root>/
      manifest.json              # schema version + sharding parameters
      shards/records-0000.jsonl  # one RunRecord per line, appended in order
      shards/records-0001.jsonl  # next shard once the previous one fills up
      raw/<fingerprint>.json     # optional raw-metrics blobs, lazily loaded

Records are appended as they complete (the executor streams them in), so an
interrupted fleet leaves a readable prefix rather than nothing.  Shards are
rolled over every ``records_per_shard`` appends, keeping individual files
small enough to scan/ship independently when a run directory accumulates
thousands of records.

Raw metrics (per-delivery delays, per-node energy, full traffic counters) are
deliberately *not* part of a record: a producer may attach them as a blob,
which lands in ``raw/`` and is referenced by ``record.raw_ref`` —
:meth:`RunStore.load_raw` reads it back on demand.

The manifest of stores written by this build additionally carries a
**fingerprint index** — ``spec_fingerprint -> [[shard, byte offset], ...]`` —
so fingerprint-keyed reads (:meth:`RunStore.records_by_fingerprint`,
``query(spec_fingerprint=...)``) seek straight to the matching lines instead
of scanning every shard.  Stores written before the index existed simply lack
the key and fall back to the full scan: old run directories stay readable.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.results.record import (
    RECORD_SCHEMA_KEY,
    RESULTS_SCHEMA_VERSION,
    RecordValidationError,
    RunRecord,
)

MANIFEST_NAME = "manifest.json"
SHARD_DIR = "shards"
RAW_DIR = "raw"

#: Manifest key of the ``spec_fingerprint -> [[shard, byte offset], ...]``
#: index.  Absent from stores written before the index existed (those are
#: read via the full-scan fallback and are never partially indexed).
INDEX_KEY = "fingerprint_index"


class RunStoreError(ValueError):
    """A run directory is unreadable or was written by an incompatible build."""


class RunStore:
    """Appendable, sharded store of :class:`RunRecord` objects.

    Args:
        root: The run directory (created lazily on first append).
        records_per_shard: Records per JSONL shard before rolling over.
    """

    def __init__(self, root: Union[str, Path], records_per_shard: int = 512) -> None:
        if records_per_shard < 1:
            raise ValueError(
                f"records_per_shard must be positive, got {records_per_shard}"
            )
        self.root = Path(root)
        self.records_per_shard = records_per_shard
        self._shard_index: Optional[int] = None
        self._shard_count = 0
        # fingerprint -> [[shard, byte offset], ...]; None means "no index"
        # (legacy store, or not loaded yet — see _load_index).
        self._index: Optional[Dict[str, List[List[int]]]] = None
        self._index_loaded = False

    # ------------------------------------------------------------- layout

    @property
    def shard_dir(self) -> Path:
        return self.root / SHARD_DIR

    @property
    def raw_dir(self) -> Path:
        return self.root / RAW_DIR

    def shard_path(self, index: int) -> Path:
        return self.shard_dir / f"records-{index:04d}.jsonl"

    def shard_paths(self) -> List[Path]:
        """Existing shard files, in append order."""
        if not self.shard_dir.is_dir():
            return []
        return sorted(self.shard_dir.glob("records-*.jsonl"))

    # ----------------------------------------------------------- manifest

    def _read_manifest(self) -> Optional[Dict[str, object]]:
        """Parsed, version-checked manifest, or ``None`` when absent."""
        manifest_path = self.root / MANIFEST_NAME
        if not manifest_path.is_file():
            return None
        try:
            manifest = json.loads(manifest_path.read_text())
        except ValueError as exc:
            raise RunStoreError(f"unreadable manifest {manifest_path}: {exc}") from exc
        version = manifest.get(RECORD_SCHEMA_KEY)
        if version != RESULTS_SCHEMA_VERSION:
            raise RunStoreError(
                f"run store {self.root} was written under record schema "
                f"{version!r}; this build reads {RESULTS_SCHEMA_VERSION}"
            )
        return manifest

    def _set_index_from_manifest(self, manifest: Optional[Dict[str, object]]) -> None:
        """Adopt the manifest's fingerprint index (idempotent).

        A manifest without the key is a legacy store: never build a partial
        index over it — its older records would be missing from indexed reads.
        """
        if self._index_loaded:
            return
        index = manifest.get(INDEX_KEY) if manifest else None
        self._index = dict(index) if isinstance(index, dict) else None
        self._index_loaded = True

    def _check_or_write_manifest(self) -> None:
        manifest = self._read_manifest()
        if manifest is not None:
            self._set_index_from_manifest(manifest)
            return
        # Fresh store: index from the first record on.  A manifest-less
        # directory that already has shards is treated as legacy — an index
        # started now would silently miss its existing records.
        self._index = {} if not self.shard_paths() else None
        self._index_loaded = True
        self.root.mkdir(parents=True, exist_ok=True)
        self._write_manifest()

    def _write_manifest(self) -> None:
        # Atomic replace: the manifest is rewritten on every indexed append,
        # and a kill mid-write must never leave a truncated manifest behind
        # (an interrupted fleet's run directory stays readable).  A kill
        # between the shard append and this replace costs at most the last
        # record's index entry — full scans (`records()`, axis-only `query`)
        # still see it.
        payload: Dict[str, object] = {
            RECORD_SCHEMA_KEY: RESULTS_SCHEMA_VERSION,
            "records_per_shard": self.records_per_shard,
        }
        if self._index is not None:
            payload[INDEX_KEY] = self._index
        manifest_path = self.root / MANIFEST_NAME
        tmp_path = manifest_path.with_suffix(".json.tmp")
        tmp_path.write_text(json.dumps(payload, sort_keys=True, indent=1))
        os.replace(tmp_path, manifest_path)

    def _load_index(self) -> Optional[Dict[str, List[List[int]]]]:
        """The fingerprint index for reads (``None`` = fall back to scans)."""
        if not self._index_loaded:
            self._set_index_from_manifest(self._read_manifest())
        return self._index

    def _locate_tail_shard(self) -> None:
        """Find (or initialise) the shard the next append goes to."""
        existing = self.shard_paths()
        if not existing:
            self._shard_index, self._shard_count = 0, 0
            return
        tail = existing[-1]
        self._shard_index = int(tail.stem.split("-")[-1])
        with tail.open() as handle:
            self._shard_count = sum(1 for _ in handle)

    # -------------------------------------------------------------- writes

    def append(self, record: RunRecord, raw: Optional[Dict[str, object]] = None) -> RunRecord:
        """Append *record* (optionally with a raw-metrics blob); returns it.

        When *raw* is given it is written to ``raw/<fingerprint>.json`` and
        the stored record's ``raw_ref`` points at it.  The (possibly updated)
        record is returned so callers can keep the stored identity.
        """
        self._check_or_write_manifest()
        if self._shard_index is None:
            self._locate_tail_shard()
        if raw is not None:
            ref = f"{RAW_DIR}/{record.spec_fingerprint}.json"
            self.raw_dir.mkdir(parents=True, exist_ok=True)
            (self.root / ref).write_text(json.dumps(raw, sort_keys=True))
            record = record.with_execution(raw_ref=ref)
        if self._shard_count >= self.records_per_shard:
            self._shard_index += 1
            self._shard_count = 0
        self.shard_dir.mkdir(parents=True, exist_ok=True)
        with self.shard_path(self._shard_index).open("a") as handle:
            offset = handle.tell()
            handle.write(record.to_json() + "\n")
        self._shard_count += 1
        if self._index is not None:
            self._index.setdefault(record.spec_fingerprint, []).append(
                [self._shard_index, offset]
            )
            self._write_manifest()
        return record

    # --------------------------------------------------------------- reads

    def records(self) -> Iterator[RunRecord]:
        """Every stored record, in append order (streamed shard by shard)."""
        for path in self.shard_paths():
            with path.open() as handle:
                for line_number, line in enumerate(handle, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        yield RunRecord.from_json(line)
                    except RecordValidationError as exc:
                        raise RunStoreError(
                            f"corrupt record at {path}:{line_number}: {exc}"
                        ) from exc

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    def records_by_fingerprint(self, fingerprint: str) -> List[RunRecord]:
        """Every record whose spec fingerprint is *fingerprint*.

        Indexed stores seek straight to the matching shard lines (the shards
        are never scanned); legacy stores without the manifest index fall
        back to streaming every shard.
        """
        index = self._load_index()
        if index is None:
            return [
                record
                for record in self.records()
                if record.spec_fingerprint == fingerprint
            ]
        selected: List[RunRecord] = []
        locations = index.get(fingerprint, [])
        # Group by shard so each shard file opens once even when a spec was
        # appended many times.
        by_shard: Dict[int, List[int]] = {}
        for shard, offset in locations:
            by_shard.setdefault(int(shard), []).append(int(offset))
        for shard in sorted(by_shard):
            path = self.shard_path(shard)
            try:
                with path.open() as handle:
                    for offset in sorted(by_shard[shard]):
                        handle.seek(offset)
                        line = handle.readline().strip()
                        try:
                            selected.append(RunRecord.from_json(line))
                        except RecordValidationError as exc:
                            raise RunStoreError(
                                f"corrupt indexed record at {path} offset "
                                f"{offset}: {exc}"
                            ) from exc
            except OSError as exc:
                raise RunStoreError(
                    f"fingerprint index points at unreadable shard {path}: {exc}"
                ) from exc
        return selected

    def query(
        self,
        protocol: Optional[str] = None,
        scenario: Optional[str] = None,
        metric: Optional[str] = None,
        spec_fingerprint: Optional[str] = None,
        **axes,
    ) -> Union[List[RunRecord], List[Tuple[RunRecord, float]]]:
        """Filtered records, optionally paired with one metric's values.

        Args:
            protocol: Keep only records of this protocol.
            scenario: Keep only records of this scenario name.
            metric: When given, return ``(record, value)`` pairs for the named
                record attribute/property (e.g. ``"energy_per_item_uj"``),
                silently skipping records that lack it — reports over
                heterogeneous fleets tolerate partial coverage.
            spec_fingerprint: Keep only records of this spec fingerprint; on
                stores with a manifest index this skips the shard scan
                entirely (see :meth:`records_by_fingerprint`).
            **axes: Grid-coordinate filters, e.g. ``placement="random"`` or
                ``num_nodes=64`` (matched against ``record.axes``).
        """
        if spec_fingerprint is not None:
            candidates = iter(self.records_by_fingerprint(spec_fingerprint))
        else:
            candidates = self.records()
        selected = []
        for record in candidates:
            if protocol is not None and record.protocol != protocol:
                continue
            if scenario is not None and record.scenario != scenario:
                continue
            if any(record.axes.get(axis) != value for axis, value in axes.items()):
                continue
            selected.append(record)
        if metric is None:
            return selected
        pairs: List[Tuple[RunRecord, float]] = []
        for record in selected:
            value = getattr(record, metric, None)
            if value is not None:
                pairs.append((record, value))
        return pairs

    def load_raw(self, record: RunRecord) -> Optional[Dict[str, object]]:
        """The raw-metrics blob referenced by *record*, or ``None``.

        Blobs are lazily loaded — nothing is read until a consumer asks.
        """
        if record.raw_ref is None:
            return None
        path = self.root / record.raw_ref
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None
