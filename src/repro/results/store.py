"""On-disk run store: sharded JSONL of run records plus optional raw blobs.

A :class:`RunStore` owns one *run directory*::

    <root>/
      manifest.json              # schema version + sharding parameters
      index.jsonl                # sidecar fingerprint index, one line/record
      shards/records-0000.jsonl  # one RunRecord per line, appended in order
      shards/records-0001.jsonl  # next shard once the previous one fills up
      shards/records-0000.jsonl.partial  # quarantined torn write tails
      raw/<key>-<keyhash>.json   # optional raw-metrics blobs, lazily loaded
      failures.jsonl             # one JobFailure per quarantined job (sidecar)
      .lock                      # advisory lock file serialising appends

**Failure sidecar.**  Jobs the supervised executor quarantines land in
``failures.jsonl`` — one schema-versioned :class:`~repro.results.JobFailure`
line each, appended under the same advisory lock as records.  Failures are
deliberately *not* records: the shards, the fingerprint index and every
canonical record byte stay untouched by fault bookkeeping, so pinned digests
cannot move because a sweep had casualties.  ``repro report`` reads the
sidecar to render its failure notice (and ``--strict`` exit).

Records are appended as they complete (the executor streams them in), so an
interrupted fleet leaves a readable prefix rather than nothing.  Shards are
rolled over every ``records_per_shard`` appends, keeping individual files
small enough to scan/ship independently when a run directory accumulates
thousands of records.

Raw metrics (per-delivery delays, per-node energy, full traffic counters) are
deliberately *not* part of a record: a producer may attach them as a blob,
which lands in ``raw/`` — keyed by the **record key** (not the spec
fingerprint, which several records may legitimately share) — and is
referenced by ``record.raw_ref``; :meth:`RunStore.load_raw` reads it back on
demand.

**Sidecar fingerprint index.**  ``index.jsonl`` holds one
``{"fingerprint", "shard", "offset"}`` line per stored record, appended right
after the record itself, so fingerprint-keyed reads
(:meth:`RunStore.records_by_fingerprint`, ``query(spec_fingerprint=...)``)
seek straight to the matching shard lines.  Because the index is itself an
append-only log, each append is O(1) amortized — earlier layouts kept the
index inside ``manifest.json`` and atomically rewrote the whole manifest on
every append, making appends O(records) and letting concurrent writers
clobber each other's index.

**Concurrency.**  Appends take an exclusive advisory lock
(``fcntl.flock`` on ``<root>/.lock``) and re-validate the cached tail state
(tail shard, line count, byte size, index tail) under it before writing, so
any number of processes — streaming-executor parents, fleet CLI runs sharing
a ``--run-dir``, a future sweep coordinator — can append to one store
without corrupting shards or the index.  Reads never take the lock: shards
and index are append-only, so previously indexed offsets stay valid forever.

**Crash safety.**  Appends flush but do not fsync ("fsync-light"): a kill
can lose the OS-buffered tail but never corrupts what was already durable.
A kill *mid-write* leaves a newline-less partial line; on the next locked
append (or an explicit :meth:`recover`) the partial tail is quarantined to
``shards/<shard>.partial`` and the shard truncated back to whole lines.  A
kill *between* the shard append and the index append leaves the sidecar one
entry short; recovery rebuilds the missing index tail by scanning only the
last shard.  Plain reads simply skip a torn final line.

**Legacy stores.**  Stores written under schema v1 — manifest-embedded
fingerprint index, or no index at all — stay fully readable.  They are
migrated on first write: the complete sidecar is rebuilt with a one-shot
scan of every shard and the manifest is rewritten at the current version
without the embedded index (see the README migration notes).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

try:  # pragma: no cover - fcntl is always present on the supported platforms
    import fcntl
except ImportError:  # pragma: no cover - Windows: appends fall back unlocked
    fcntl = None  # type: ignore[assignment]

from repro.results.failures import FailureValidationError, JobFailure
from repro.results.record import (
    RECORD_SCHEMA_KEY,
    RESULTS_SCHEMA_VERSION,
    SUPPORTED_RESULTS_SCHEMA_VERSIONS,
    RecordValidationError,
    RunRecord,
)

MANIFEST_NAME = "manifest.json"
INDEX_NAME = "index.jsonl"
LOCK_NAME = ".lock"
SHARD_DIR = "shards"
RAW_DIR = "raw"
FAILURES_NAME = "failures.jsonl"

#: Suffix of quarantine files holding torn write tails (partial lines left by
#: a killed writer), next to the shard they were recovered from.
PARTIAL_SUFFIX = ".partial"

#: Manifest key of the legacy (schema v1) ``spec_fingerprint ->
#: [[shard, byte offset], ...]`` manifest-embedded index.  Never written
#: anymore; still honoured for reads of unmigrated v1 stores.
INDEX_KEY = "fingerprint_index"

_SHARD_STEM = re.compile(r"records-(\d+)$")
_RAW_UNSAFE = re.compile(r"[^A-Za-z0-9._-]+")


class RunStoreError(ValueError):
    """A run directory is unreadable or was written by an incompatible build."""


class _StoreLock:
    """Re-entrant exclusive advisory lock on the store's ``.lock`` file.

    ``flock`` locks the open file description, so two :class:`RunStore`
    instances — in one process or many — serialise against each other; the
    re-entrancy counter only guards nested use within a single instance.
    """

    def __init__(self, path: Path) -> None:
        self.path = path
        self._fd: Optional[int] = None
        self._depth = 0

    def __enter__(self) -> "_StoreLock":
        if self._depth == 0 and fcntl is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(str(self.path), os.O_RDWR | os.O_CREAT, 0o644)
            fcntl.flock(self._fd, fcntl.LOCK_EX)
        self._depth += 1
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._depth -= 1
        if self._depth == 0 and self._fd is not None:
            fcntl.flock(self._fd, fcntl.LOCK_UN)
            os.close(self._fd)
            self._fd = None


class RunStore:
    """Appendable, sharded store of :class:`RunRecord` objects.

    Args:
        root: The run directory (created lazily on first append).
        records_per_shard: Records per JSONL shard before rolling over.
    """

    def __init__(self, root: Union[str, Path], records_per_shard: int = 512) -> None:
        if records_per_shard < 1:
            raise ValueError(
                f"records_per_shard must be positive, got {records_per_shard}"
            )
        self.root = Path(root)
        self.records_per_shard = records_per_shard
        self._lock = _StoreLock(self.root / LOCK_NAME)
        # Cached append tail: (shard number, line count, byte size).  Only
        # trusted under the lock, and re-validated there before every write.
        self._tail_shard = 0
        self._tail_count = 0
        self._tail_size = 0
        self._append_ready = False
        # In-memory mirror of the sidecar index: fingerprint -> [[shard,
        # offset], ...], plus how many bytes of index.jsonl it covers and the
        # last entry consumed (the watermark index-tail repair resumes from).
        self._index: Optional[Dict[str, List[List[int]]]] = None
        self._index_bytes = 0
        self._last_indexed: Optional[Tuple[int, int]] = None
        # Legacy manifest-embedded index (schema v1 stores, read-only path).
        self._manifest_index: Optional[Dict[str, List[List[int]]]] = None
        self._manifest_index_loaded = False

    # ------------------------------------------------------------- layout

    @property
    def shard_dir(self) -> Path:
        return self.root / SHARD_DIR

    @property
    def raw_dir(self) -> Path:
        return self.root / RAW_DIR

    @property
    def index_path(self) -> Path:
        return self.root / INDEX_NAME

    @property
    def failures_path(self) -> Path:
        return self.root / FAILURES_NAME

    def shard_path(self, index: int) -> Path:
        return self.shard_dir / f"records-{index:04d}.jsonl"

    def shard_paths(self) -> List[Path]:
        """Existing shard files, in append order."""
        if not self.shard_dir.is_dir():
            return []
        return sorted(self.shard_dir.glob("records-*.jsonl"))

    def partial_paths(self) -> List[Path]:
        """Quarantine files holding torn write tails recovered from shards."""
        if not self.shard_dir.is_dir():
            return []
        return sorted(self.shard_dir.glob(f"records-*.jsonl{PARTIAL_SUFFIX}"))

    @staticmethod
    def _shard_number(path: Path) -> int:
        match = _SHARD_STEM.search(path.stem)
        if match is None:  # pragma: no cover - glob already guarantees this
            raise RunStoreError(f"unrecognised shard file name {path.name}")
        return int(match.group(1))

    # ----------------------------------------------------------- manifest

    def _read_manifest(self) -> Optional[Dict[str, object]]:
        """Parsed, version-checked manifest, or ``None`` when absent."""
        manifest_path = self.root / MANIFEST_NAME
        if not manifest_path.is_file():
            return None
        try:
            manifest = json.loads(manifest_path.read_text())
        except ValueError as exc:
            raise RunStoreError(f"unreadable manifest {manifest_path}: {exc}") from exc
        version = manifest.get(RECORD_SCHEMA_KEY)
        if version not in SUPPORTED_RESULTS_SCHEMA_VERSIONS:
            raise RunStoreError(
                f"run store {self.root} was written under record schema "
                f"{version!r}; this build reads "
                f"{sorted(SUPPORTED_RESULTS_SCHEMA_VERSIONS)}"
            )
        return manifest

    def _write_manifest(self) -> None:
        # Atomic replace so a kill mid-write never leaves a truncated
        # manifest.  Written once per store (plus once more when migrating a
        # legacy layout) — never on the append path.
        payload: Dict[str, object] = {
            RECORD_SCHEMA_KEY: RESULTS_SCHEMA_VERSION,
            "records_per_shard": self.records_per_shard,
        }
        manifest_path = self.root / MANIFEST_NAME
        tmp_path = manifest_path.with_suffix(".json.tmp")
        tmp_path.write_text(json.dumps(payload, sort_keys=True, indent=1))
        os.replace(tmp_path, manifest_path)

    # ----------------------------------------------------- sidecar index

    @staticmethod
    def _line_fingerprint(raw: bytes, path: Path, offset: int) -> str:
        """The ``spec_fingerprint`` of one serialized record line."""
        try:
            fingerprint = json.loads(raw)["spec_fingerprint"]
        except (ValueError, KeyError, TypeError) as exc:
            raise RunStoreError(
                f"corrupt record at {path} offset {offset}: {exc}"
            ) from exc
        if not isinstance(fingerprint, str):
            raise RunStoreError(
                f"corrupt record at {path} offset {offset}: "
                f"non-string spec_fingerprint {fingerprint!r}"
            )
        return fingerprint

    def _refresh_index(self) -> None:
        """Fold index lines appended since the last look into the mirror.

        Only whole (newline-terminated) lines are consumed, so this is safe
        from unlocked read paths; a torn final line — a writer killed mid
        index append — is left in place here and truncated away by
        :meth:`_repair_torn_index_tail` on the locked append path.
        """
        path = self.index_path
        if not path.is_file():
            return
        if self._index is None:
            self._index, self._index_bytes, self._last_indexed = {}, 0, None
        size = path.stat().st_size
        if size < self._index_bytes:
            # The file shrank under us (an external recovery truncated a torn
            # tail we had not consumed anyway, or the index was rebuilt):
            # drop the mirror and reload from scratch.
            self._index, self._index_bytes, self._last_indexed = {}, 0, None
        elif size == self._index_bytes:
            return
        with path.open("rb") as handle:
            handle.seek(self._index_bytes)
            data = handle.read()
        end = data.rfind(b"\n") + 1
        for raw in data[:end].splitlines():
            try:
                entry = json.loads(raw)
                fingerprint = entry["fingerprint"]
                shard, offset = int(entry["shard"]), int(entry["offset"])
            except (ValueError, KeyError, TypeError) as exc:
                raise RunStoreError(
                    f"corrupt index entry in {path}: {raw!r}: {exc}"
                ) from exc
            self._index.setdefault(fingerprint, []).append([shard, offset])
            self._last_indexed = (shard, offset)
        self._index_bytes += end

    def _repair_torn_index_tail(self) -> None:
        """Truncate a torn (newline-less) final index line.  Locked only.

        Runs after :meth:`_refresh_index` on the append path, where the
        advisory lock guarantees no concurrent appender: any bytes past the
        consumed whole lines are a torn tail, and the record they pointed at
        is still in its shard, re-indexed by :meth:`_repair_index_tail`.
        """
        path = self.index_path
        if not path.is_file():
            return
        if path.stat().st_size > self._index_bytes:
            with path.open("r+b") as handle:
                handle.truncate(self._index_bytes)

    def _append_index_entry(self, fingerprint: str, shard: int, offset: int) -> None:
        line = (
            json.dumps(
                {"fingerprint": fingerprint, "shard": shard, "offset": offset},
                sort_keys=True,
            )
            + "\n"
        )
        with self.index_path.open("a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
        if self._index is None:
            self._index = {}
        self._index.setdefault(fingerprint, []).append([shard, offset])
        self._index_bytes += len(line)
        self._last_indexed = (shard, offset)

    def _rebuild_sidecar(self) -> None:
        """One-shot full index rebuild by scanning every shard (migration).

        Written atomically (temp file + rename) so a kill mid-migration
        leaves no index at all — the next writer simply migrates again.
        """
        entries: List[str] = []
        index: Dict[str, List[List[int]]] = {}
        last: Optional[Tuple[int, int]] = None
        for path in self.shard_paths():
            shard = self._shard_number(path)
            offset = 0
            with path.open("rb") as handle:
                for raw in handle:
                    if not raw.endswith(b"\n"):
                        break  # torn tail; already quarantined by recovery
                    fingerprint = self._line_fingerprint(raw, path, offset)
                    entries.append(
                        json.dumps(
                            {"fingerprint": fingerprint, "shard": shard,
                             "offset": offset},
                            sort_keys=True,
                        )
                    )
                    index.setdefault(fingerprint, []).append([shard, offset])
                    last = (shard, offset)
                    offset += len(raw)
        text = "".join(entry + "\n" for entry in entries)
        tmp = self.index_path.with_name(INDEX_NAME + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, self.index_path)
        self._index, self._index_bytes, self._last_indexed = index, len(text), last

    def _repair_index_tail(self) -> None:
        """Append index entries for tail-shard records the sidecar misses.

        A kill between a shard append and its index append leaves the sidecar
        short; because every writer repairs before appending, the gap can
        only ever sit at the end of the *last* shard — so recovery scans that
        shard alone, starting just past the last indexed record.
        """
        if self._index is None:
            return
        path = self.shard_path(self._tail_shard)
        if not path.is_file():
            return
        start = 0
        if self._last_indexed is not None:
            shard, offset = self._last_indexed
            if shard > self._tail_shard:
                raise RunStoreError(
                    f"index of {self.root} points at shard {shard} past the "
                    f"tail shard {self._tail_shard}"
                )
            if shard == self._tail_shard:
                with path.open("rb") as handle:
                    handle.seek(offset)
                    start = offset + len(handle.readline())
        if start >= self._tail_size:
            return
        with path.open("rb") as handle:
            handle.seek(start)
            offset = start
            for raw in handle:
                if not raw.endswith(b"\n"):
                    break
                fingerprint = self._line_fingerprint(raw, path, offset)
                self._append_index_entry(fingerprint, self._tail_shard, offset)
                offset += len(raw)

    def _load_index_for_read(self) -> Optional[Dict[str, List[List[int]]]]:
        """The fingerprint index for reads (``None`` = fall back to scans)."""
        if self.index_path.is_file():
            self._refresh_index()
            return self._index
        if not self._manifest_index_loaded:
            manifest = self._read_manifest()
            legacy = manifest.get(INDEX_KEY) if manifest else None
            self._manifest_index = (
                {str(fp): [[int(s), int(o)] for s, o in locations]
                 for fp, locations in legacy.items()}
                if isinstance(legacy, dict)
                else None
            )
            self._manifest_index_loaded = True
        return self._manifest_index

    # ---------------------------------------------------- crash recovery

    def _recover_torn_shard_tail(self) -> None:
        """Quarantine a newline-less tail left by a killed writer.

        The partial line is appended to ``<shard>.partial`` and the shard
        truncated back to whole lines, so the next append starts a fresh line
        instead of concatenating onto the torn one.
        """
        existing = self.shard_paths()
        if not existing:
            return
        tail = existing[-1]
        data = tail.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        cut = data.rfind(b"\n") + 1
        quarantine = tail.with_name(tail.name + PARTIAL_SUFFIX)
        with quarantine.open("ab") as handle:
            handle.write(data[cut:] + b"\n")
        with tail.open("r+b") as handle:
            handle.truncate(cut)

    def _locate_tail(self) -> None:
        """Measure the shard the next append goes to (whole lines only)."""
        existing = self.shard_paths()
        if not existing:
            self._tail_shard, self._tail_count, self._tail_size = 0, 0, 0
            return
        tail = existing[-1]
        self._tail_shard = self._shard_number(tail)
        count = size = 0
        with tail.open("rb") as handle:
            for raw in handle:
                count += 1
                size += len(raw)
        self._tail_count, self._tail_size = count, size

    def _prepare_append(self) -> None:
        """One-time (per process) open-for-append: recover, migrate, locate.

        Runs under the lock.  Quarantines a torn shard tail, loads or — for
        legacy stores — rebuilds the sidecar index, repairs a missing index
        tail, and brings the manifest to the current schema.
        """
        if self._append_ready:
            return
        manifest = self._read_manifest()
        self.root.mkdir(parents=True, exist_ok=True)
        self._recover_torn_shard_tail()
        if self.index_path.is_file():
            self._refresh_index()
            self._repair_torn_index_tail()
        else:
            # Legacy store (manifest-embedded index or none at all) or a
            # deleted sidecar: rebuild the complete index in one shot.
            self._rebuild_sidecar()
        self._locate_tail()
        self._repair_index_tail()
        if (
            manifest is None
            or manifest.get(RECORD_SCHEMA_KEY) != RESULTS_SCHEMA_VERSION
            or INDEX_KEY in manifest
        ):
            self._write_manifest()
        self._append_ready = True

    def _revalidate_tail(self) -> None:
        """Re-sync cached tail state if another writer moved it (locked).

        Cheap stat-based check first; only when the tail shard grew, shrank
        or rolled over does the store re-read the index tail, re-run torn
        write recovery and re-measure the last shard.
        """
        tail_path = self.shard_path(self._tail_shard)
        try:
            size = tail_path.stat().st_size
        except OSError:
            size = 0
        if size == self._tail_size and not self.shard_path(self._tail_shard + 1).exists():
            return
        self._recover_torn_shard_tail()
        self._refresh_index()
        self._repair_torn_index_tail()
        self._locate_tail()
        self._repair_index_tail()

    def recover(self) -> None:
        """Run crash recovery now, without appending anything.

        Takes the append lock, quarantines any torn shard tail and rebuilds
        the missing sidecar-index tail.  Appends do this implicitly; call
        this to repair a store that is only ever read.
        """
        with self._lock:
            self._append_ready = False
            self._prepare_append()

    # -------------------------------------------------------------- writes

    @staticmethod
    def _raw_ref_for(key: str) -> str:
        """Store-relative raw-blob path for the record key *key*.

        Keyed by the full record key — not the spec fingerprint, which
        several records (same spec, different seed/axes re-stamping) may
        share — with a hash suffix so sanitising the key for the filesystem
        can never collide two distinct keys.
        """
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]
        safe = _RAW_UNSAFE.sub("-", key).strip("-")[:48] or "record"
        return f"{RAW_DIR}/{safe}-{digest}.json"

    def append(self, record: RunRecord, raw: Optional[Dict[str, object]] = None) -> RunRecord:
        """Append *record* (optionally with a raw-metrics blob); returns it.

        Serialised against every other writer by the store lock; the cached
        tail state is re-validated under the lock before the write.  When
        *raw* is given it is written to ``raw/`` keyed by the record key and
        the stored record's ``raw_ref`` points at it.  The (possibly updated)
        record is returned so callers can keep the stored identity.
        """
        with self._lock:
            self._prepare_append()
            self._revalidate_tail()
            if raw is not None:
                ref = self._raw_ref_for(record.key)
                self.raw_dir.mkdir(parents=True, exist_ok=True)
                (self.root / ref).write_text(json.dumps(raw, sort_keys=True))
                record = record.with_execution(raw_ref=ref)
            if self._tail_count >= self.records_per_shard:
                self._tail_shard += 1
                self._tail_count = 0
                self._tail_size = 0
            self.shard_dir.mkdir(parents=True, exist_ok=True)
            line = record.to_json() + "\n"
            with self.shard_path(self._tail_shard).open("a", encoding="utf-8") as handle:
                offset = handle.tell()
                handle.write(line)
                handle.flush()
            self._tail_count += 1
            self._tail_size = offset + len(line)
            self._append_index_entry(
                record.spec_fingerprint, self._tail_shard, offset
            )
        return record

    def append_failure(self, failure: JobFailure) -> JobFailure:
        """Append a quarantined job's failure to the ``failures.jsonl`` sidecar.

        Takes the same advisory lock as record appends (so fleet runs sharing
        one ``--run-dir`` interleave whole lines), but touches neither the
        shards nor the fingerprint index — failures are bookkeeping, not
        results, and canonical record bytes must not move because of them.
        Flush-but-no-fsync, like record appends: a kill mid-write leaves at
        worst a torn final line, which reads skip.
        """
        with self._lock:
            self.root.mkdir(parents=True, exist_ok=True)
            with self.failures_path.open("a", encoding="utf-8") as handle:
                handle.write(failure.to_json() + "\n")
                handle.flush()
        return failure

    def failures(self) -> List[JobFailure]:
        """Every quarantined-job failure recorded in this run directory.

        Lock-free like every other read.  A newline-less final line (a writer
        killed mid-append) is skipped; any other unparsable line is a loud
        :class:`RunStoreError`.
        """
        path = self.failures_path
        if not path.is_file():
            return []
        selected: List[JobFailure] = []
        with path.open(encoding="utf-8") as handle:
            for line_number, raw in enumerate(handle, start=1):
                if not raw.endswith("\n"):
                    break
                line = raw.strip()
                if not line:
                    continue
                try:
                    selected.append(JobFailure.from_json(line))
                except FailureValidationError as exc:
                    raise RunStoreError(
                        f"corrupt failure at {path}:{line_number}: {exc}"
                    ) from exc
        return selected

    # --------------------------------------------------------------- reads

    def records(self) -> Iterator[RunRecord]:
        """Every stored record, in append order (streamed shard by shard).

        A newline-less final line in the last shard — the torn tail of a
        killed writer, quarantined by the next locked append — is skipped;
        any other unparsable line is a loud :class:`RunStoreError`.
        """
        paths = self.shard_paths()
        for path in paths:
            last_shard = path == paths[-1]
            with path.open() as handle:
                for line_number, raw in enumerate(handle, start=1):
                    if last_shard and not raw.endswith("\n"):
                        break
                    line = raw.strip()
                    if not line:
                        continue
                    try:
                        yield RunRecord.from_json(line)
                    except RecordValidationError as exc:
                        raise RunStoreError(
                            f"corrupt record at {path}:{line_number}: {exc}"
                        ) from exc

    def __len__(self) -> int:
        """Stored record count, from shard line counts alone.

        Counts newline-terminated lines without parsing or validating them,
        so ``len()`` is cheap and still works on a store whose torn tail was
        (or has yet to be) quarantined — unlike the historical behaviour of
        deserialising every record just to count them.
        """
        total = 0
        for path in self.shard_paths():
            with path.open("rb") as handle:
                while True:
                    chunk = handle.read(1 << 20)
                    if not chunk:
                        break
                    total += chunk.count(b"\n")
        return total

    def records_by_fingerprint(self, fingerprint: str) -> List[RunRecord]:
        """Every record whose spec fingerprint is *fingerprint*.

        Indexed stores seek straight to the matching shard lines (the shards
        are never scanned); legacy stores without either index fall back to
        streaming every shard.
        """
        index = self._load_index_for_read()
        if index is None:
            return [
                record
                for record in self.records()
                if record.spec_fingerprint == fingerprint
            ]
        selected: List[RunRecord] = []
        locations = index.get(fingerprint, [])
        # Group by shard so each shard file opens once even when a spec was
        # appended many times.
        by_shard: Dict[int, List[int]] = {}
        for shard, offset in locations:
            by_shard.setdefault(int(shard), []).append(int(offset))
        for shard in sorted(by_shard):
            path = self.shard_path(shard)
            try:
                with path.open() as handle:
                    for offset in sorted(by_shard[shard]):
                        handle.seek(offset)
                        line = handle.readline().strip()
                        try:
                            selected.append(RunRecord.from_json(line))
                        except RecordValidationError as exc:
                            raise RunStoreError(
                                f"corrupt indexed record at {path} offset "
                                f"{offset}: {exc}"
                            ) from exc
            except OSError as exc:
                raise RunStoreError(
                    f"fingerprint index points at unreadable shard {path}: {exc}"
                ) from exc
        return selected

    def query(
        self,
        protocol: Optional[str] = None,
        scenario: Optional[str] = None,
        metric: Optional[str] = None,
        spec_fingerprint: Optional[str] = None,
        **axes,
    ) -> Union[List[RunRecord], List[Tuple[RunRecord, float]]]:
        """Filtered records, optionally paired with one metric's values.

        Args:
            protocol: Keep only records of this protocol.
            scenario: Keep only records of this scenario name.
            metric: When given, return ``(record, value)`` pairs for the named
                record attribute/property (e.g. ``"energy_per_item_uj"``),
                silently skipping records that lack it — reports over
                heterogeneous fleets tolerate partial coverage.
            spec_fingerprint: Keep only records of this spec fingerprint; on
                indexed stores this skips the shard scan entirely (see
                :meth:`records_by_fingerprint`).
            **axes: Grid-coordinate filters, e.g. ``placement="random"`` or
                ``num_nodes=64`` (matched against ``record.axes``).
        """
        if spec_fingerprint is not None:
            candidates = iter(self.records_by_fingerprint(spec_fingerprint))
        else:
            candidates = self.records()
        selected = []
        for record in candidates:
            if protocol is not None and record.protocol != protocol:
                continue
            if scenario is not None and record.scenario != scenario:
                continue
            if any(record.axes.get(axis) != value for axis, value in axes.items()):
                continue
            selected.append(record)
        if metric is None:
            return selected
        pairs: List[Tuple[RunRecord, float]] = []
        for record in selected:
            value = getattr(record, metric, None)
            if value is not None:
                pairs.append((record, value))
        return pairs

    def load_raw(self, record: RunRecord) -> Optional[Dict[str, object]]:
        """The raw-metrics blob referenced by *record*, or ``None``.

        Blobs are lazily loaded — nothing is read until a consumer asks.
        Legacy fingerprint-keyed references keep resolving: the ref stored on
        the record is the path that gets read.
        """
        if record.raw_ref is None:
            return None
        path = self.root / record.raw_ref
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None
