"""Per-packet transmission/reception energy and the energy ledger.

Energy model
------------

A transmission of ``size_bytes`` at power level ``P`` (mW) lasts
``size_bytes * t_tx_per_byte_ms`` milliseconds and therefore consumes
``P * size_bytes * t_tx_per_byte_ms`` microjoules (mW x ms = uJ).  Reception
consumes energy at the receive power, which the paper (citing [16]) equates to
the lowest transmission power level ``E_m``.

The :class:`EnergyLedger` accumulates per-node and per-category energy so that
SPIN and SPMS are measured with exactly the same bookkeeping, including the
energy spent on routing-table formation that the mobility experiments charge
to SPMS.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.radio.power import PowerLevel, PowerTable


@dataclass(frozen=True, slots=True)
class TransmissionCost:
    """Energy and airtime of a single transmission.

    Attributes:
        energy_uj: Energy drawn from the sender's battery (microjoules).
        airtime_ms: Time the packet occupies the channel (milliseconds).
        power_level: The level used for the transmission.
    """

    energy_uj: float
    airtime_ms: float
    power_level: PowerLevel


class EnergyModel:
    """Computes per-packet energy costs from a power table.

    Args:
        power_table: Discrete transmission power levels.
        t_tx_per_byte_ms: Transmission time per byte (Table 1: 0.05 ms/byte).
        rx_power_mw: Power drawn while receiving; defaults to the lowest
            transmission level's power, following the paper's simplification
            ``E_r = E_m``.
    """

    def __init__(
        self,
        power_table: PowerTable,
        t_tx_per_byte_ms: float = 0.05,
        rx_power_mw: Optional[float] = None,
    ) -> None:
        if t_tx_per_byte_ms <= 0:
            raise ValueError(f"t_tx_per_byte_ms must be positive, got {t_tx_per_byte_ms}")
        self.power_table = power_table
        self.t_tx_per_byte_ms = t_tx_per_byte_ms
        self.rx_power_mw = (
            power_table.min_level.power_mw if rx_power_mw is None else rx_power_mw
        )
        if self.rx_power_mw < 0:
            raise ValueError(f"rx power must be non-negative, got {self.rx_power_mw}")
        # Costs depend only on (size, level) and both are immutable, so the
        # per-packet accounting on the simulation's hottest path (one charge
        # per transmission and per reception) is memoised.  The level's power
        # is part of the key so ad-hoc levels that reuse an index (tests,
        # hand-built tables) can never alias a cached entry.
        self._tx_memo: Dict[tuple, TransmissionCost] = {}
        self._rx_memo: Dict[int, float] = {}

    def airtime_ms(self, size_bytes: int) -> float:
        """Time on air for a packet of *size_bytes*."""
        if size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {size_bytes}")
        return size_bytes * self.t_tx_per_byte_ms

    def tx_cost(self, size_bytes: int, level: PowerLevel) -> TransmissionCost:
        """Energy/airtime to transmit *size_bytes* at *level*."""
        key = (size_bytes, level.index, level.power_mw)
        cost = self._tx_memo.get(key)
        if cost is None:
            airtime = self.airtime_ms(size_bytes)
            cost = TransmissionCost(
                energy_uj=level.power_mw * airtime,
                airtime_ms=airtime,
                power_level=level,
            )
            self._tx_memo[key] = cost
        return cost

    def tx_cost_for_distance(self, size_bytes: int, distance_m: float) -> TransmissionCost:
        """Energy/airtime using the lowest-power level that reaches *distance_m*."""
        level = self.power_table.level_for_distance(distance_m)
        return self.tx_cost(size_bytes, level)

    def tx_cost_max_power(self, size_bytes: int) -> TransmissionCost:
        """Energy/airtime transmitting at the maximum power level (SPIN's mode)."""
        return self.tx_cost(size_bytes, self.power_table.max_level)

    def rx_cost(self, size_bytes: int) -> float:
        """Energy to receive a packet of *size_bytes* (microjoules)."""
        cost = self._rx_memo.get(size_bytes)
        if cost is None:
            cost = self.rx_power_mw * self.airtime_ms(size_bytes)
            self._rx_memo[size_bytes] = cost
        return cost

    # ----------------------------------------------------------- batch (numpy)

    def tx_energies_uj(
        self, size_bytes: int, powers_mw: np.ndarray
    ) -> np.ndarray:
        """Vectorised transmit energy for one packet size at many power levels.

        ``powers_mw`` is typically a row of
        :meth:`repro.radio.power.PowerTable.power_for_distances`; ``nan``
        entries (out of range) propagate so callers can mask them.
        """
        airtime = self.airtime_ms(size_bytes)
        return np.asarray(powers_mw, dtype=float) * airtime

    def rx_costs_uj(self, sizes_bytes: Sequence[int]) -> np.ndarray:
        """Vectorised receive energy for many packet sizes (microjoules)."""
        sizes = np.asarray(sizes_bytes, dtype=float)
        if np.any(sizes <= 0):
            raise ValueError("packet sizes must be positive")
        airtimes_ms = sizes * self.t_tx_per_byte_ms  # airtime_ms, vectorised
        return self.rx_power_mw * airtimes_ms


class EnergyLedger:
    """Accumulates energy usage per node and per accounting category.

    Categories used by the protocols:

    * ``"tx"`` — data/control transmissions,
    * ``"rx"`` — receptions,
    * ``"routing"`` — distributed Bellman-Ford table formation and maintenance.
    """

    def __init__(self) -> None:
        self._per_node: Dict[int, float] = defaultdict(float)
        self._per_category: Dict[str, float] = defaultdict(float)
        self._per_node_category: Dict[tuple, float] = defaultdict(float)

    def charge(self, node_id: int, energy_uj: float, category: str = "tx") -> None:
        """Add *energy_uj* to *node_id* under *category*."""
        if energy_uj < 0:
            raise ValueError(f"energy must be non-negative, got {energy_uj}")
        self._per_node[node_id] += energy_uj
        self._per_category[category] += energy_uj
        self._per_node_category[(node_id, category)] += energy_uj

    def hot_path_accounts(self):
        """The ``(per_node, per_category, per_node_category)`` accumulators.

        For the network delivery loops only: a reception loop charging one
        pre-validated non-negative cost per receiver updates the mappings
        directly instead of paying one :meth:`charge` call per reception.
        Callers must mirror :meth:`charge` exactly — same three updates, same
        order — so the accumulated floats are bit-identical to per-call
        charging.
        """
        return self._per_node, self._per_category, self._per_node_category

    def charge_batch(
        self,
        node_ids: Sequence[int],
        energies_uj: np.ndarray,
        category: str = "tx",
    ) -> None:
        """Charge many nodes in one call (vectorised validation + totals).

        Equivalent to calling :meth:`charge` once per ``(node, energy)`` pair
        but validates and sums with numpy, which matters for bulk charges
        such as routing-table formation across the whole field.
        """
        energies = np.asarray(energies_uj, dtype=float)
        if energies.shape != (len(node_ids),):
            raise ValueError(
                f"need one energy per node, got {energies.shape} for {len(node_ids)} nodes"
            )
        if energies.size and (np.any(energies < 0) or np.any(np.isnan(energies))):
            raise ValueError("energies must be non-negative and finite")
        for node_id, energy in zip(node_ids, energies.tolist()):
            self._per_node[node_id] += energy
            self._per_node_category[(node_id, category)] += energy
        self._per_category[category] += float(energies.sum())

    def node_total(self, node_id: int) -> float:
        """Total energy consumed by *node_id*."""
        return self._per_node.get(node_id, 0.0)

    def category_total(self, category: str) -> float:
        """Total energy consumed network-wide under *category*."""
        return self._per_category.get(category, 0.0)

    def node_category_total(self, node_id: int, category: str) -> float:
        """Energy consumed by *node_id* under *category*."""
        return self._per_node_category.get((node_id, category), 0.0)

    @property
    def total(self) -> float:
        """Network-wide total energy consumed."""
        return sum(self._per_node.values())

    @property
    def per_node(self) -> Dict[int, float]:
        """Copy of the per-node totals."""
        return dict(self._per_node)

    @property
    def per_category(self) -> Dict[str, float]:
        """Copy of the per-category totals."""
        return dict(self._per_category)

    def merge(self, other: "EnergyLedger") -> None:
        """Fold another ledger's totals into this one."""
        for node_id, value in other._per_node.items():
            self._per_node[node_id] += value
        for category, value in other._per_category.items():
            self._per_category[category] += value
        for key, value in other._per_node_category.items():
            self._per_node_category[key] += value

    def reset(self) -> None:
        """Zero every counter."""
        self._per_node.clear()
        self._per_category.clear()
        self._per_node_category.clear()
