"""Discrete transmission power levels.

Table 1 of the paper lists five MICA2 power levels (in mW) together with the
distance each level can cover:

=====  ============  =============
Level  Power (mW)    Range (m)
=====  ============  =============
1      3.1622        91.44
2      0.7943        45.72
3      0.1995        22.86
4      0.05          11.28
5      0.0125        5.48
=====  ============  =============

Level 1 is the *maximum* power level; its range defines a node's **zone** in
SPMS.  SPIN always transmits at the level whose range equals the configured
transmission radius, while SPMS picks the lowest-power level that still
reaches the intended next hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np


@dataclass(frozen=True)
class PowerLevel:
    """One discrete transmission power setting.

    Attributes:
        index: 1-based level index; lower index means higher power.
        power_mw: Radiated power in milliwatts.
        range_m: Maximum distance (metres) a transmission at this level reaches.
    """

    index: int
    power_mw: float
    range_m: float

    def reaches(self, distance_m: float) -> bool:
        """Whether a transmission at this level covers *distance_m*."""
        return distance_m <= self.range_m + 1e-12


class PowerTable:
    """An ordered collection of :class:`PowerLevel` settings.

    Levels are stored from highest power (longest range) to lowest power
    (shortest range), mirroring the paper's numbering.
    """

    def __init__(self, levels: Iterable[PowerLevel]) -> None:
        ordered = sorted(levels, key=lambda lv: lv.range_m, reverse=True)
        if not ordered:
            raise ValueError("power table needs at least one level")
        for first, second in zip(ordered, ordered[1:]):
            if second.power_mw >= first.power_mw:
                raise ValueError(
                    "power must decrease as range decreases "
                    f"({first} vs {second})"
                )
        self._levels: List[PowerLevel] = ordered

    def __len__(self) -> int:
        return len(self._levels)

    def __iter__(self):
        return iter(self._levels)

    def __getitem__(self, i: int) -> PowerLevel:
        return self._levels[i]

    @property
    def levels(self) -> Sequence[PowerLevel]:
        """Levels ordered from maximum power to minimum power."""
        return tuple(self._levels)

    @property
    def max_level(self) -> PowerLevel:
        """The highest-power (longest-range) level — defines the zone radius."""
        return self._levels[0]

    @property
    def min_level(self) -> PowerLevel:
        """The lowest-power (shortest-range) level."""
        return self._levels[-1]

    @property
    def max_range_m(self) -> float:
        """Range of the maximum power level."""
        return self.max_level.range_m

    def level_for_distance(self, distance_m: float) -> PowerLevel:
        """Return the *lowest-power* level that reaches ``distance_m``.

        Raises:
            ValueError: If even the maximum power level cannot cover the
                distance (the destination is outside the zone).
        """
        if distance_m < 0:
            raise ValueError(f"distance must be non-negative, got {distance_m}")
        for level in reversed(self._levels):
            if level.reaches(distance_m):
                return level
        raise ValueError(
            f"distance {distance_m:.2f} m exceeds maximum range "
            f"{self.max_range_m:.2f} m"
        )

    def power_for_distances(self, distances_m: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`level_for_distance`, returning power in mW.

        For every entry the power of the lowest-power level that reaches it
        (same ``range + 1e-12`` tolerance as :meth:`PowerLevel.reaches`);
        entries beyond the maximum range yield ``nan`` instead of raising, so
        callers can mask them (routing only queries in-zone pairs anyway).
        """
        distances = np.asarray(distances_m, dtype=float)
        if np.any(distances < 0):
            raise ValueError("distances must be non-negative")
        powers = np.full(distances.shape, np.nan)
        # Highest power first, overwritten by every lower level that still
        # reaches — identical to the scalar lowest-power-that-reaches scan.
        for level in self._levels:
            powers = np.where(distances <= level.range_m + 1e-12, level.power_mw, powers)
        return powers

    def truncated_to_radius(self, radius_m: float) -> "PowerTable":
        """Return a table whose maximum range equals *radius_m*.

        The experiments sweep the transmission radius (Figures 7, 9, 11, 12,
        13).  A sweep value of e.g. 20 m means the maximum power level used by
        the protocols covers 20 m; lower levels keep their native ranges.  If
        no native level has exactly that range, the maximum level is rescaled
        (power scaled by the path-loss law is handled by
        :func:`build_power_table_for_radius`, which is the preferred entry
        point); here we simply drop levels whose range exceeds *radius_m* and,
        if necessary, add a synthetic level at *radius_m*.
        """
        kept = [lv for lv in self._levels if lv.range_m <= radius_m + 1e-9]
        if not kept:
            raise ValueError(
                f"radius {radius_m} m is below the shortest native range "
                f"{self.min_level.range_m} m"
            )
        if abs(kept[0].range_m - radius_m) > 1e-9:
            reference = self._levels[0]
            scale = (radius_m / reference.range_m) ** 3.5
            synthetic = PowerLevel(
                index=0,
                power_mw=reference.power_mw * scale,
                range_m=radius_m,
            )
            if synthetic.power_mw > kept[0].power_mw:
                kept = [synthetic] + kept
        return PowerTable(kept)


#: The five MICA2 levels from Table 1 of the paper.
MICA2_POWER_TABLE = PowerTable(
    [
        PowerLevel(index=1, power_mw=3.1622, range_m=91.44),
        PowerLevel(index=2, power_mw=0.7943, range_m=45.72),
        PowerLevel(index=3, power_mw=0.1995, range_m=22.86),
        PowerLevel(index=4, power_mw=0.05, range_m=11.28),
        PowerLevel(index=5, power_mw=0.0125, range_m=5.48),
    ]
)


def build_power_table_for_radius(
    radius_m: float,
    num_levels: int = 5,
    alpha: float = 3.5,
    max_power_mw: float = 3.1622,
    reference_range_m: float = 91.44,
) -> PowerTable:
    """Construct a power table whose maximum range is ``radius_m``.

    The experiments sweep the maximum transmission radius from roughly 5 m to
    30 m, which does not correspond to a prefix of the native MICA2 table.
    Following the paper's path-loss reasoning (power proportional to
    ``d**alpha``), we generate ``num_levels`` levels with ranges spaced
    geometrically between ``radius_m`` and ``radius_m / 2**(num_levels - 1)``
    and power scaled as ``(range / reference_range_m) ** alpha`` relative to
    the MICA2 maximum power.

    Args:
        radius_m: Desired maximum transmission range (zone radius).
        num_levels: Number of discrete levels to generate.
        alpha: Path-loss exponent used for power scaling.
        max_power_mw: Power of the reference (longest-range) MICA2 level.
        reference_range_m: Range of the reference MICA2 level.

    Returns:
        A :class:`PowerTable` with ``num_levels`` levels, maximum range
        ``radius_m``.
    """
    if radius_m <= 0:
        raise ValueError(f"radius must be positive, got {radius_m}")
    if num_levels < 1:
        raise ValueError(f"need at least one level, got {num_levels}")
    levels = []
    for i in range(num_levels):
        range_m = radius_m / (2.0**i)
        power_mw = max_power_mw * (range_m / reference_range_m) ** alpha
        levels.append(PowerLevel(index=i + 1, power_mw=power_mw, range_m=range_m))
    return PowerTable(levels)
