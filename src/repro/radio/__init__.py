"""Radio substrate: transmission power levels, path loss and energy accounting.

The paper's evaluation is parameterised by the MICA2 Berkeley-mote radio
(Table 1): five discrete transmission power levels with corresponding maximum
ranges, a per-byte transmission time, and 2-byte control packets versus
40-byte data packets.  This package encodes that table and provides:

* :class:`~repro.radio.power.PowerLevel` / :data:`~repro.radio.power.MICA2_POWER_TABLE`
  — the discrete levels and range-to-level selection.
* :mod:`repro.radio.pathloss` — d^alpha path-loss helpers used by the
  analytical model and by continuous-power configurations.
* :class:`~repro.radio.energy.EnergyModel` and
  :class:`~repro.radio.energy.EnergyLedger` — per-packet TX/RX energy and the
  per-node / network-wide accounting used by every experiment.
"""

from repro.radio.energy import EnergyLedger, EnergyModel, TransmissionCost
from repro.radio.pathloss import (
    FreeSpacePathLoss,
    PathLossModel,
    PowerLawPathLoss,
    TwoRayGroundPathLoss,
)
from repro.radio.power import (
    MICA2_POWER_TABLE,
    PowerLevel,
    PowerTable,
    build_power_table_for_radius,
)

__all__ = [
    "EnergyLedger",
    "EnergyModel",
    "FreeSpacePathLoss",
    "MICA2_POWER_TABLE",
    "PathLossModel",
    "PowerLawPathLoss",
    "PowerLevel",
    "PowerTable",
    "TransmissionCost",
    "TwoRayGroundPathLoss",
    "build_power_table_for_radius",
]
