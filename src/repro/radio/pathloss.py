"""Path-loss models and vectorised range geometry.

The paper's analysis assumes transmission energy proportional to ``d**alpha``
with ``alpha`` between 2 and 4, and uses ``alpha = 3.5`` (two-ray ground
beyond ~7 m) for the Section-4 energy comparison.  These models are used by
the analytical module and by :func:`repro.radio.power.build_power_table_for_radius`.

The module also hosts the **vectorised neighbour-range computation** shared by
zone construction and routing: :func:`pairwise_distances` builds the full
node-to-node distance matrix in one numpy expression and
:func:`neighbors_within_matrix` turns it into a boolean "who can hear whom"
adjacency.  These replace the per-pair ``math.hypot`` loops that dominated
scenario build time (zone refresh is O(n²) and reruns after every mobility
epoch), and every worker process of a parallel sweep benefits.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

#: Slack added to range comparisons so nodes exactly on the radius are
#: neighbours despite floating-point rounding (matches
#: :meth:`repro.topology.field.SensorField.neighbors_within`).
RANGE_TOLERANCE_M = 1e-9


def pairwise_distances(positions: np.ndarray) -> np.ndarray:
    """Full Euclidean distance matrix of an ``(n, 2)`` position array.

    Returns an ``(n, n)`` float array; entry ``[i, j]`` is the distance
    between rows *i* and *j* (diagonal zero).  ``np.hypot`` keeps the
    element-wise arithmetic identical to the scalar ``math.hypot`` path.
    """
    pos = np.asarray(positions, dtype=float)
    if pos.ndim != 2 or pos.shape[1] != 2:
        raise ValueError(f"positions must have shape (n, 2), got {pos.shape}")
    deltas = pos[:, None, :] - pos[None, :, :]
    return np.hypot(deltas[:, :, 0], deltas[:, :, 1])


def neighbors_within_matrix(
    positions: np.ndarray,
    radius_m: float,
    tolerance_m: float = RANGE_TOLERANCE_M,
) -> np.ndarray:
    """Boolean adjacency: ``[i, j]`` true when *j* is within *radius_m* of *i*.

    The diagonal is false (a node is not its own neighbour).  Comparison uses
    the same ``radius + tolerance`` rule as the scalar field queries, so the
    vectorised zones are bit-identical to the loop-based ones.
    """
    if radius_m < 0:
        raise ValueError(f"radius must be non-negative, got {radius_m}")
    distances = pairwise_distances(positions)
    adjacency = distances <= radius_m + tolerance_m
    np.fill_diagonal(adjacency, False)
    return adjacency


class PathLossModel(ABC):
    """Maps a link distance to the relative power required to cover it."""

    @abstractmethod
    def required_power(self, distance_m: float) -> float:
        """Relative transmit power (arbitrary units) needed to reach *distance_m*."""

    def required_power_array(self, distances_m: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`required_power` over an array of distances."""
        distances = np.asarray(distances_m, dtype=float)
        return np.vectorize(self.required_power, otypes=[float])(distances)

    def energy_ratio(self, distance_a: float, distance_b: float) -> float:
        """Ratio of the power needed for *distance_a* to that for *distance_b*."""
        denominator = self.required_power(distance_b)
        if denominator == 0:
            raise ZeroDivisionError("reference distance requires zero power")
        return self.required_power(distance_a) / denominator


class PowerLawPathLoss(PathLossModel):
    """Generic ``d**alpha`` model.

    Args:
        alpha: Path-loss exponent, typically in ``[2, 4]``.
        reference_power: Power required at unit distance.
    """

    def __init__(self, alpha: float = 3.5, reference_power: float = 1.0) -> None:
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if reference_power <= 0:
            raise ValueError(f"reference power must be positive, got {reference_power}")
        self.alpha = alpha
        self.reference_power = reference_power

    def required_power(self, distance_m: float) -> float:
        if distance_m < 0:
            raise ValueError(f"distance must be non-negative, got {distance_m}")
        return self.reference_power * distance_m**self.alpha

    def required_power_array(self, distances_m: np.ndarray) -> np.ndarray:
        distances = np.asarray(distances_m, dtype=float)
        if np.any(distances < 0):
            raise ValueError("distances must be non-negative")
        return self.reference_power * distances**self.alpha


class FreeSpacePathLoss(PowerLawPathLoss):
    """Free-space model: ``alpha = 2``."""

    def __init__(self, reference_power: float = 1.0) -> None:
        super().__init__(alpha=2.0, reference_power=reference_power)


class TwoRayGroundPathLoss(PathLossModel):
    """Piecewise model: free space up to a crossover distance, then ``d**3.5``.

    The paper cites the two-ray ground model with ``alpha`` close to 3.5
    beyond roughly 7 metres; below the crossover we fall back to free space.
    """

    def __init__(
        self,
        crossover_m: float = 7.0,
        reference_power: float = 1.0,
        far_alpha: float = 3.5,
    ) -> None:
        if crossover_m <= 0:
            raise ValueError(f"crossover must be positive, got {crossover_m}")
        self.crossover_m = crossover_m
        self.reference_power = reference_power
        self.far_alpha = far_alpha
        self._near = PowerLawPathLoss(alpha=2.0, reference_power=reference_power)
        # Match the two segments at the crossover so the model is continuous.
        near_at_crossover = self._near.required_power(crossover_m)
        far_reference = near_at_crossover / crossover_m**far_alpha
        self._far = PowerLawPathLoss(alpha=far_alpha, reference_power=far_reference)

    def required_power(self, distance_m: float) -> float:
        if distance_m < 0:
            raise ValueError(f"distance must be non-negative, got {distance_m}")
        if distance_m <= self.crossover_m:
            return self._near.required_power(distance_m)
        return self._far.required_power(distance_m)

    def required_power_array(self, distances_m: np.ndarray) -> np.ndarray:
        distances = np.asarray(distances_m, dtype=float)
        if np.any(distances < 0):
            raise ValueError("distances must be non-negative")
        return np.where(
            distances <= self.crossover_m,
            self._near.required_power_array(distances),
            self._far.required_power_array(distances),
        )
