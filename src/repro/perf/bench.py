"""Named benchmark scenarios and the in-process benchmark harness.

A :class:`BenchScenario` names a registered scenario matrix (plus a scale and
an optional job cap) as a *reproducible unit of kernel work*.  Benchmarks run
serially in-process — no worker pool, no IPC — so the measured wall time is
the simulation kernel's, not the executor's.

Each run produces one schema-versioned record (a plain dict, see
:mod:`repro.perf.schema`) carrying:

* throughput — total events processed, wall time, events/sec,
* a ``canonical_digest`` — SHA-256 over the run records' ``canonical_json``
  renderings in job order, so a perf regression check doubles as a
  byte-identity check: optimisations must move wall time without moving the
  digest,
* provenance — git describe/commit, python version, timestamp.
"""

from __future__ import annotations

import hashlib
import platform
import subprocess
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Dict, List, Optional, Sequence, Tuple

from repro.perf.schema import BENCH_SCHEMA_KEY, BENCH_SCHEMA_VERSION

#: Default trajectory file benchmark records are appended to.
DEFAULT_BENCH_PATH = "BENCH_kernel.json"


@dataclass(frozen=True)
class BenchScenario:
    """A named, reproducible benchmark workload.

    Attributes:
        name: Registry name (``repro bench <name>``).
        matrix: Registered scenario-matrix name to expand (``kind="matrix"``),
            or a pseudo-name describing the workload otherwise.
        scale: Figure scale preset (``"bench"`` or ``"paper"``).
        max_jobs: Run only the first N expanded jobs (quick smoke modes).
            For ``kind="store-append"``, the number of records appended.
        description: One-line human description for ``repro bench --list``.
        kind: ``"matrix"`` runs simulation jobs; ``"store-append"`` times the
            :class:`~repro.results.RunStore` append path instead (one
            synthetic record per "event", into a throwaway run directory);
            ``"sweep-overhead"`` runs the jobs through the supervised
            2-worker pool so the trajectory tracks executor supervision
            overhead (same canonical digest as the serial run — the pool
            must not move bytes, only wall time).
    """

    name: str
    matrix: str
    scale: str = "bench"
    max_jobs: Optional[int] = None
    description: str = ""
    kind: str = "matrix"

    def jobs(self) -> List:
        """Expand the matrix into the jobs this benchmark runs."""
        from repro.experiments import figures
        from repro.experiments.matrix import get_matrix

        scale = (
            figures.paper_scale() if self.scale == "paper" else figures.bench_scale()
        )
        jobs = get_matrix(self.matrix, scale=scale).expand()
        if self.max_jobs is not None:
            jobs = jobs[: self.max_jobs]
        return jobs


_BENCHMARKS: Dict[str, BenchScenario] = {}


def register_benchmark(scenario: BenchScenario, replace: bool = False) -> BenchScenario:
    """Register *scenario* under its name; returns it.

    Raises:
        ValueError: When the name is taken and *replace* is false.
    """
    if scenario.name in _BENCHMARKS and not replace:
        raise ValueError(f"benchmark {scenario.name!r} is already registered")
    _BENCHMARKS[scenario.name] = scenario
    return scenario


def available_benchmarks() -> List[str]:
    """Sorted names of every registered benchmark."""
    return sorted(_BENCHMARKS)


def get_benchmark(name: str) -> BenchScenario:
    """The registered benchmark called *name*.

    Raises:
        KeyError: With the known names when *name* is not registered.
    """
    try:
        return _BENCHMARKS[name]
    except KeyError:
        known = ", ".join(available_benchmarks())
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None


#: Name of the quick smoke benchmark (``repro bench --quick``; CI runs it).
QUICK_BENCHMARK = "quick"

register_benchmark(
    BenchScenario(
        name="fig06",
        matrix="fig06",
        description="fig06 energy-vs-nodes bench grid, serial (the acceptance benchmark)",
    )
)
register_benchmark(
    BenchScenario(
        name="fig10-failures",
        matrix="fig10-failures",
        description="fig10 delay-under-failures bench grid, serial",
    )
)
register_benchmark(
    BenchScenario(
        name=QUICK_BENCHMARK,
        matrix="fig06",
        max_jobs=2,
        description="first two fig06 jobs (16 nodes, both protocols) — CI smoke",
    )
)
register_benchmark(
    BenchScenario(
        name="store-append",
        matrix="store-append",
        kind="store-append",
        max_jobs=10_000,
        description="append 10k records to one RunStore (locked sidecar-index path)",
    )
)
register_benchmark(
    BenchScenario(
        name="sweep-overhead",
        matrix="fig06",
        max_jobs=2,
        kind="sweep-overhead",
        description="quick fig06 jobs through the supervised 2-worker pool "
                    "(executor supervision overhead)",
    )
)


# --------------------------------------------------------------------- harness


def git_metadata() -> Optional[Dict[str, str]]:
    """``git describe``/commit of the working tree, or ``None`` outside git."""

    def _git(*args: str) -> str:
        return subprocess.run(
            ("git", *args), capture_output=True, text=True, check=True, timeout=10
        ).stdout.strip()

    try:
        return {
            "describe": _git("describe", "--always", "--dirty"),
            "commit": _git("rev-parse", "HEAD"),
        }
    except (OSError, subprocess.SubprocessError):
        return None


def store_append_record(index: int) -> "object":
    """Deterministic synthetic :class:`RunRecord` #*index* for store benches.

    Fingerprints repeat every 1024 appends so the sidecar index accumulates
    multi-location entries the way a re-run sweep's store would.
    """
    from repro.metrics.summary import DistributionSummary, MetricsSummary
    from repro.results import RunRecord

    fingerprint = hashlib.sha256(
        f"store-append/{index % 1024}".encode("utf-8")
    ).hexdigest()
    summary = MetricsSummary(
        items_generated=1,
        expected_deliveries=8,
        deliveries_completed=8,
        total_energy_uj=90.0,
        energy_breakdown_uj={"rx": 40.0, "tx": 50.0},
        packets_sent={"ADV": 9},
        delay=DistributionSummary(8, 5.0, 1.0, 9.0, 2.0, 5.0),
    )
    return RunRecord(
        key=f"store-append/{index:06d}",
        protocol="spms",
        scenario="store-append",
        spec_fingerprint=fingerprint,
        seed=index,
        num_nodes=9,
        transmission_radius_m=20.0,
        summary=summary,
        axes={"append_index": index},
    )


def _run_store_append_benchmark(scenario: BenchScenario) -> Dict[str, object]:
    """Time `max_jobs` RunStore appends into a throwaway run directory.

    One "event" is one append through the full locked path (tail
    re-validation, shard write, sidecar index write).  Record construction
    and the canonical digest are computed outside the timed section, so the
    wall time is the store's.  The digest doubles as the usual byte-identity
    gate: the appended records are deterministic, and after the timed loop
    the store must read back exactly the records that went in.
    """
    import tempfile
    from pathlib import Path

    from repro.results import RunStore

    count = scenario.max_jobs or 10_000
    records = [store_append_record(i) for i in range(count)]
    digest = hashlib.sha256(
        "\n".join(r.canonical_json() for r in records).encode("utf-8")
    ).hexdigest()
    with tempfile.TemporaryDirectory(prefix="repro-store-bench-") as tmp:
        store = RunStore(Path(tmp) / "run", records_per_shard=512)
        started = time.perf_counter()
        for record in records:
            store.append(record)
        wall_time_s = time.perf_counter() - started
        stored = len(store)
        if stored != count:
            raise RuntimeError(
                f"store-append benchmark lost records: {stored}/{count} stored"
            )
    return {
        BENCH_SCHEMA_KEY: BENCH_SCHEMA_VERSION,
        "benchmark": scenario.name,
        "matrix": scenario.matrix,
        "scale": scenario.scale,
        "jobs": count,
        "events_processed": count,
        "sim_time_ms": 0.0,
        "wall_time_s": wall_time_s,
        "events_per_sec": (count / wall_time_s) if wall_time_s > 0 else 0.0,
        "canonical_digest": digest,
        "git": git_metadata(),
        "python_version": platform.python_version(),
        "timestamp_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


def _run_sweep_overhead_benchmark(scenario: BenchScenario) -> Dict[str, object]:
    """Time the scenario's jobs through the supervised 2-worker pool.

    The timed section is the whole :func:`~repro.experiments.executor.
    execute_jobs` call — process spawn, dispatch, supervision polling, IPC
    and teardown — so the trajectory notices when supervision machinery gets
    more expensive.  The digest is computed over ``canonical_json`` in job
    order (not completion order), so it must equal the serial ``quick``
    benchmark's digest for the same jobs: supervised execution may only move
    wall time, never bytes.  One "event" is one completed delivery — the
    record-level proxy for kernel work (workers reduce collectors in-process,
    so the parent never sees raw event counts).
    """
    from repro.experiments.executor import execute_jobs

    jobs = scenario.jobs()
    started = time.perf_counter()
    records, report = execute_jobs(jobs, workers=2)
    wall_time_s = time.perf_counter() - started
    if report.quarantined or len(records) != len(jobs):
        raise RuntimeError(
            f"sweep-overhead benchmark lost jobs: {len(records)}/{len(jobs)} "
            f"completed, {report.quarantined} quarantined"
        )
    ordered = [records[job.key] for job in jobs]
    digest = hashlib.sha256(
        "\n".join(r.canonical_json() for r in ordered).encode("utf-8")
    ).hexdigest()
    deliveries = sum(r.deliveries_completed for r in ordered)
    return {
        BENCH_SCHEMA_KEY: BENCH_SCHEMA_VERSION,
        "benchmark": scenario.name,
        "matrix": scenario.matrix,
        "scale": scenario.scale,
        "jobs": len(jobs),
        "events_processed": deliveries,
        "sim_time_ms": sum(r.sim_time_ms for r in ordered),
        "wall_time_s": wall_time_s,
        "events_per_sec": (deliveries / wall_time_s) if wall_time_s > 0 else 0.0,
        "canonical_digest": digest,
        "git": git_metadata(),
        "python_version": platform.python_version(),
        "timestamp_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


def run_benchmark(scenario: BenchScenario) -> Dict[str, object]:
    """Run *scenario* serially in-process and return its bench record.

    The returned dict is schema-versioned and validates under
    :func:`repro.perf.schema.validate_bench_record`.
    """
    from repro.experiments.runner import ExperimentRunner

    if scenario.kind == "store-append":
        return _run_store_append_benchmark(scenario)
    if scenario.kind == "sweep-overhead":
        return _run_sweep_overhead_benchmark(scenario)
    jobs = scenario.jobs()
    canonical: List[str] = []
    total_events = 0
    total_sim_time_ms = 0.0
    started = time.perf_counter()
    for job in jobs:
        runner = ExperimentRunner(job.spec)
        record = runner.run_record(key=job.key, axes=job.axes)
        assert runner.sim is not None
        total_events += runner.sim.events_processed
        total_sim_time_ms += record.sim_time_ms
        canonical.append(record.canonical_json())
    wall_time_s = time.perf_counter() - started
    digest = hashlib.sha256("\n".join(canonical).encode("utf-8")).hexdigest()
    return {
        BENCH_SCHEMA_KEY: BENCH_SCHEMA_VERSION,
        "benchmark": scenario.name,
        "matrix": scenario.matrix,
        "scale": scenario.scale,
        "jobs": len(jobs),
        "events_processed": total_events,
        "sim_time_ms": total_sim_time_ms,
        "wall_time_s": wall_time_s,
        "events_per_sec": (total_events / wall_time_s) if wall_time_s > 0 else 0.0,
        "canonical_digest": digest,
        "git": git_metadata(),
        "python_version": platform.python_version(),
        "timestamp_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


def compare_bench_record(
    record: Dict[str, object], records: Sequence[Dict[str, object]]
) -> Tuple[Optional[bool], List[str]]:
    """Compare *record* against the latest trajectory record of its benchmark.

    The trajectory (``BENCH_kernel.json``) may interleave records of several
    benchmarks; the baseline is the most recent record whose ``benchmark``
    name matches.  Returns ``(matched, lines)``:

    * ``matched is None`` — the trajectory holds no earlier record of this
      benchmark (nothing to compare; first run on a fresh trajectory),
    * ``matched is True`` — the canonical digests agree; *lines* report the
      events/sec delta,
    * ``matched is False`` — digest drift: the same workload produced
      different results, which means an optimisation broke byte-identity.
    """
    baseline = None
    for prior in reversed(list(records)):
        if prior.get("benchmark") == record["benchmark"]:
            baseline = prior
            break
    if baseline is None:
        return None, [
            f"compare: no earlier {record['benchmark']!r} record in the "
            "trajectory; nothing to compare against"
        ]
    git = baseline.get("git") or {}
    described = git.get("describe", "?") if isinstance(git, dict) else "?"
    tag = f"{described} @ {baseline.get('timestamp_utc', '?')}"
    if baseline["canonical_digest"] != record["canonical_digest"]:
        return False, [
            f"compare: DIGEST DRIFT vs baseline ({tag})",
            f"  baseline digest  {baseline['canonical_digest']}",
            f"  current digest   {record['canonical_digest']}",
            "  the same workload produced different metrics — the kernel or "
            "protocol change is not byte-identical",
        ]
    old_eps = float(baseline["events_per_sec"])
    new_eps = float(record["events_per_sec"])
    delta = f" ({(new_eps - old_eps) / old_eps:+.1%})" if old_eps > 0 else ""
    return True, [
        f"compare: digest matches baseline ({tag})",
        f"  events/sec       {old_eps:.0f} -> {new_eps:.0f}{delta}",
        f"  wall time        {float(baseline['wall_time_s']):.2f} s -> "
        f"{float(record['wall_time_s']):.2f} s",
    ]


def format_bench_record(record: Dict[str, object]) -> List[str]:
    """Human-readable summary lines of a bench record (CLI output)."""
    git = record.get("git") or {}
    describe = git.get("describe", "-") if isinstance(git, dict) else "-"
    return [
        f"benchmark {record['benchmark']} "
        f"(matrix={record['matrix']}, scale={record['scale']}, jobs={record['jobs']})",
        f"  events processed   {record['events_processed']}",
        f"  wall time          {record['wall_time_s']:.2f} s",
        f"  events/sec         {record['events_per_sec']:.0f}",
        f"  canonical digest   {str(record['canonical_digest'])[:16]}…",
        f"  git                {describe}",
    ]
