"""Performance tracking: named kernel benchmarks and their persistent records.

``repro bench`` (see :mod:`repro.cli`) runs a named benchmark scenario —
a registered scenario matrix executed serially in-process — and appends a
schema-versioned record (events/sec, wall time, canonical result digest, git
metadata) to ``BENCH_kernel.json``, giving every future optimisation PR a
trajectory to regress against.
"""

from repro.perf.bench import (
    BENCH_SCHEMA_KEY,
    BENCH_SCHEMA_VERSION,
    DEFAULT_BENCH_PATH,
    BenchScenario,
    available_benchmarks,
    compare_bench_record,
    get_benchmark,
    register_benchmark,
    run_benchmark,
)
from repro.perf.schema import (
    BenchValidationError,
    append_bench_record,
    load_bench_records,
    validate_bench_record,
)

__all__ = [
    "BENCH_SCHEMA_KEY",
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_BENCH_PATH",
    "BenchScenario",
    "BenchValidationError",
    "append_bench_record",
    "available_benchmarks",
    "compare_bench_record",
    "get_benchmark",
    "load_bench_records",
    "register_benchmark",
    "run_benchmark",
    "validate_bench_record",
]
