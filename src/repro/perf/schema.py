"""Schema and persistence of benchmark records.

``BENCH_kernel.json`` is a JSON array of bench records, appended to by
``repro bench``.  Every record carries its own schema version under
:data:`BENCH_SCHEMA_KEY`; :func:`validate_bench_record` is the single
validation gate (the CLI validates before appending, CI validates the emitted
file, and tests validate the harness output).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

#: Version of the serialized bench-record schema.  Bump whenever the record
#: layout changes incompatibly (same policy as ``RESULTS_SCHEMA_VERSION``).
BENCH_SCHEMA_VERSION = 1

#: Key carrying the schema version inside each bench record.
BENCH_SCHEMA_KEY = "bench_schema_version"

#: Required fields and their accepted types (``git`` may be None when the
#: benchmark runs outside a git checkout).
_REQUIRED_FIELDS: Dict[str, tuple] = {
    BENCH_SCHEMA_KEY: (int,),
    "benchmark": (str,),
    "matrix": (str,),
    "scale": (str,),
    "jobs": (int,),
    "events_processed": (int,),
    "sim_time_ms": (int, float),
    "wall_time_s": (int, float),
    "events_per_sec": (int, float),
    "canonical_digest": (str,),
    "git": (dict, type(None)),
    "python_version": (str,),
    "timestamp_utc": (str,),
}


class BenchValidationError(ValueError):
    """A bench record (or bench file) failed validation."""


def validate_bench_record(record: object) -> Dict[str, object]:
    """Validate one bench record; returns it on success.

    Raises:
        BenchValidationError: On a non-dict payload, wrong schema version,
            missing/unknown keys or wrongly-typed values.
    """
    if not isinstance(record, dict):
        raise BenchValidationError(
            f"bench record must be a mapping, got {type(record).__name__}"
        )
    version = record.get(BENCH_SCHEMA_KEY)
    if version != BENCH_SCHEMA_VERSION:
        raise BenchValidationError(
            f"unsupported bench schema version {version!r}; "
            f"this build reads version {BENCH_SCHEMA_VERSION}"
        )
    missing = sorted(set(_REQUIRED_FIELDS) - set(record))
    if missing:
        raise BenchValidationError(f"bench record is missing keys {missing}")
    unknown = sorted(set(record) - set(_REQUIRED_FIELDS))
    if unknown:
        raise BenchValidationError(
            f"unknown bench record keys {unknown}; "
            f"known keys: {sorted(_REQUIRED_FIELDS)}"
        )
    for key, types in _REQUIRED_FIELDS.items():
        if not isinstance(record[key], types):
            expected = "/".join(t.__name__ for t in types)
            raise BenchValidationError(
                f"bench record field {key!r} must be {expected}, "
                f"got {type(record[key]).__name__}"
            )
    if record["wall_time_s"] < 0 or record["events_processed"] < 0:
        raise BenchValidationError("bench throughput fields must be non-negative")
    return record  # type: ignore[return-value]


def load_bench_records(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Every record in the bench file at *path* (``[]`` when absent).

    Raises:
        BenchValidationError: When the file is not a JSON array of valid
            bench records.
    """
    path = Path(path)
    if not path.is_file():
        return []
    try:
        data = json.loads(path.read_text())
    except ValueError as exc:
        raise BenchValidationError(f"unreadable bench file {path}: {exc}") from exc
    if not isinstance(data, list):
        raise BenchValidationError(
            f"bench file {path} must hold a JSON array of records"
        )
    return [validate_bench_record(record) for record in data]


def append_bench_record(
    path: Union[str, Path], record: Dict[str, object]
) -> List[Dict[str, object]]:
    """Validate *record*, append it to the bench file and return all records."""
    records = load_bench_records(path)
    records.append(validate_bench_record(record))
    Path(path).write_text(json.dumps(records, sort_keys=True, indent=1) + "\n")
    return records
