"""Node identity and position."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Position:
    """A point in the 2-D sensor field (metres)."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance to *other*."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def moved_by(self, dx: float, dy: float) -> "Position":
        """A new position displaced by ``(dx, dy)``."""
        return Position(self.x + dx, self.y + dy)


@dataclass
class NodeInfo:
    """Static identity and (mutable) position of a sensor node.

    Attributes:
        node_id: Unique integer identifier.
        position: Current location in the field; mobility updates it.
    """

    node_id: int
    position: Position

    def distance_to(self, other: "NodeInfo") -> float:
        """Euclidean distance to another node."""
        return self.position.distance_to(other.position)
