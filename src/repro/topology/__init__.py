"""Sensor-field topology: node placement, zones and the weighted zone graph.

The paper's experiments use a sensor field of uniform node density — as the
number of nodes grows, the field area grows with it.  This package provides:

* :class:`~repro.topology.node.NodeInfo` — identity plus position.
* :class:`~repro.topology.field.SensorField` — a set of placed nodes with
  distance queries and neighbourhood look-ups; constructed by the placement
  helpers in :mod:`repro.topology.placement` (uniform grid or uniform random).
* :mod:`repro.topology.zone` — a node's *zone* is the set of nodes reachable
  at its maximum transmission power; zones drive both SPIN's neighbourhood and
  SPMS's routing scope.
* :mod:`repro.topology.graph` — the weighted graph over a zone, where an edge
  weight is the minimum transmission power needed for that hop; the input to
  distributed Bellman-Ford.
"""

from repro.topology.field import SensorField
from repro.topology.graph import ZoneGraph, build_zone_graph
from repro.topology.node import NodeInfo, Position
from repro.topology.placement import grid_placement, random_placement
from repro.topology.zone import ZoneMap, compute_zones

__all__ = [
    "NodeInfo",
    "Position",
    "SensorField",
    "ZoneGraph",
    "ZoneMap",
    "build_zone_graph",
    "compute_zones",
    "grid_placement",
    "random_placement",
]
