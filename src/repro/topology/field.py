"""The sensor field: placed nodes plus geometric queries.

:class:`SensorField` is the geometric substrate shared by the channel (who can
hear a transmission), zone computation, and mobility (which rewrites node
positions).  Queries are O(n) per call, which is fine for the paper's field
sizes (up to a few hundred nodes); results that protocols use repeatedly
(zones, zone graphs, routing tables) are cached at higher layers and refreshed
only when the topology actually changes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.topology.node import NodeInfo, Position


class SensorField:
    """A collection of nodes in a 2-D field."""

    def __init__(self, nodes: Iterable[NodeInfo]) -> None:
        node_list = list(nodes)
        if not node_list:
            raise ValueError("a sensor field needs at least one node")
        ids = [n.node_id for n in node_list]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate node ids in sensor field")
        self._nodes: Dict[int, NodeInfo] = {n.node_id: n for n in node_list}
        self._topology_version = 0
        self._positions_cache: Optional[Tuple[int, List[int], np.ndarray]] = None

    # ------------------------------------------------------------ inspection

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def __iter__(self):
        return iter(self._nodes.values())

    @property
    def node_ids(self) -> List[int]:
        """Sorted list of node ids."""
        return sorted(self._nodes)

    @property
    def topology_version(self) -> int:
        """Counter bumped every time a node moves; used to invalidate caches."""
        return self._topology_version

    def node(self, node_id: int) -> NodeInfo:
        """Look up a node by id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyError(f"unknown node id {node_id}") from None

    def position(self, node_id: int) -> Position:
        """Current position of *node_id*."""
        return self.node(node_id).position

    # ------------------------------------------------------------- geometry

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between nodes *a* and *b*."""
        return self.node(a).distance_to(self.node(b))

    def neighbors_within(self, node_id: int, radius_m: float) -> List[int]:
        """Ids of nodes (excluding *node_id*) within *radius_m* of *node_id*."""
        if radius_m < 0:
            raise ValueError(f"radius must be non-negative, got {radius_m}")
        center = self.node(node_id).position
        return [
            other.node_id
            for other in self._nodes.values()
            if other.node_id != node_id
            and center.distance_to(other.position) <= radius_m + 1e-9
        ]

    def nodes_within(self, node_id: int, radius_m: float) -> int:
        """Number of nodes within *radius_m* of *node_id*, **including** it.

        This is the contender count ``n`` of the MAC model.
        """
        return len(self.neighbors_within(node_id, radius_m)) + 1

    def positions_array(self) -> Tuple[List[int], np.ndarray]:
        """``(sorted_node_ids, (n, 2) position array)`` for vectorised geometry.

        Cached per :attr:`topology_version`, so repeated zone/routing rebuilds
        between mobility epochs reuse the same array.
        """
        cache = self._positions_cache
        if cache is not None and cache[0] == self._topology_version:
            return cache[1], cache[2]
        ids = self.node_ids
        array = np.array(
            [[self._nodes[i].position.x, self._nodes[i].position.y] for i in ids],
            dtype=float,
        ).reshape(len(ids), 2)
        self._positions_cache = (self._topology_version, ids, array)
        return ids, array

    def bounding_box(self) -> tuple:
        """``(min_x, min_y, max_x, max_y)`` of the field."""
        xs = [n.position.x for n in self._nodes.values()]
        ys = [n.position.y for n in self._nodes.values()]
        return (min(xs), min(ys), max(xs), max(ys))

    # -------------------------------------------------------------- mutation

    def move_node(self, node_id: int, new_position: Position) -> None:
        """Relocate *node_id*; bumps :attr:`topology_version`."""
        node = self.node(node_id)
        node.position = new_position
        self._topology_version += 1
