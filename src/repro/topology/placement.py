"""Node placement strategies.

The paper keeps the node density uniform: more nodes means a bigger field.
``grid_placement`` reproduces that with a square grid of fixed spacing (the
experiments use 169 = 13 x 13 nodes at the default radius of 20 m).
``random_placement`` keeps the same average density but scatters the nodes
uniformly at random, which the tests use to check the protocols do not depend
on grid regularity.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional

from repro.sim.rng import RandomStreams
from repro.topology.node import NodeInfo, Position

if TYPE_CHECKING:
    # Annotation-only: the runtime entropy source is always handed in by the
    # builder (or derived below via RandomStreams), never stdlib random.
    import random

#: Default grid spacing in metres.  With the default 20 m transmission radius
#: this gives each interior node a zone of roughly a dozen neighbours,
#: matching the 5-50 node zone sizes the paper calls typical.
DEFAULT_GRID_SPACING_M = 10.0

#: Stream name stochastic placements draw from; the builder passes
#: ``sim.rng.stream(PLACEMENT_STREAM)`` so placement draws never perturb the
#: workload/failure/mobility streams.
PLACEMENT_STREAM = "topology.placement"


def grid_placement(
    num_nodes: int,
    spacing_m: float = DEFAULT_GRID_SPACING_M,
) -> List[NodeInfo]:
    """Place *num_nodes* on a square grid of *spacing_m* metres.

    If ``num_nodes`` is not a perfect square the grid is the smallest square
    that fits, filled row by row, so density stays uniform.

    Args:
        num_nodes: Number of nodes to place.
        spacing_m: Distance between adjacent grid points.

    Returns:
        A list of :class:`NodeInfo` with ids ``0 .. num_nodes - 1``.
    """
    if num_nodes < 1:
        raise ValueError(f"need at least one node, got {num_nodes}")
    if spacing_m <= 0:
        raise ValueError(f"spacing must be positive, got {spacing_m}")
    side = math.ceil(math.sqrt(num_nodes))
    nodes = []
    for node_id in range(num_nodes):
        row, col = divmod(node_id, side)
        nodes.append(
            NodeInfo(node_id=node_id, position=Position(col * spacing_m, row * spacing_m))
        )
    return nodes


def random_placement(
    num_nodes: int,
    density_per_m2: Optional[float] = None,
    rng: Optional[random.Random] = None,
    spacing_m: float = DEFAULT_GRID_SPACING_M,
) -> List[NodeInfo]:
    """Scatter *num_nodes* uniformly at random with the same average density
    as :func:`grid_placement`.

    Args:
        num_nodes: Number of nodes to place.
        density_per_m2: Target density; defaults to one node per
            ``spacing_m ** 2`` square metres.
        rng: Source of randomness — normally the simulator's dedicated
            placement stream.  Defaults to the ``PLACEMENT_STREAM`` of a
            seed-0 :class:`~repro.sim.rng.RandomStreams`, so direct calls
            stay reproducible and draw through the same machinery as the
            builder.
        spacing_m: Used only to derive the default density.

    Returns:
        A list of :class:`NodeInfo` with ids ``0 .. num_nodes - 1``.
    """
    if num_nodes < 1:
        raise ValueError(f"need at least one node, got {num_nodes}")
    if density_per_m2 is None:
        density_per_m2 = 1.0 / (spacing_m * spacing_m)
    if density_per_m2 <= 0:
        raise ValueError(f"density must be positive, got {density_per_m2}")
    if rng is None:
        rng = RandomStreams(0).stream(PLACEMENT_STREAM)
    area = num_nodes / density_per_m2
    side = math.sqrt(area)
    return [
        NodeInfo(node_id=i, position=Position(rng.uniform(0, side), rng.uniform(0, side)))
        for i in range(num_nodes)
    ]
