"""Zone computation.

A node's **zone** is the set of nodes it can reach when transmitting at its
maximum power level (Section 3.2).  Those nodes are its *zone neighbours*:
SPIN advertises to them directly, and SPMS runs distributed Bellman-Ford among
them to find minimum-power multi-hop routes.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.radio.pathloss import neighbors_within_matrix
from repro.topology.field import SensorField


class ZoneMap:
    """Zone membership for every node at a fixed maximum transmission radius."""

    def __init__(self, field: SensorField, radius_m: float) -> None:
        if radius_m <= 0:
            raise ValueError(f"zone radius must be positive, got {radius_m}")
        self.radius_m = radius_m
        self._field = field
        self._zones: Dict[int, Set[int]] = {}
        self._built_for_version = -1
        self.refresh()

    def refresh(self) -> None:
        """Recompute every zone from current node positions.

        Uses the vectorised neighbour-range computation (one numpy adjacency
        for the whole field) instead of n per-node O(n) scans; the tolerance
        matches the scalar queries so membership is identical.
        """
        ids, positions = self._field.positions_array()
        adjacency = neighbors_within_matrix(positions, self.radius_m)
        self._zones = {
            node_id: {ids[j] for j in adjacency[i].nonzero()[0]}
            for i, node_id in enumerate(ids)
        }
        self._built_for_version = self._field.topology_version

    @property
    def stale(self) -> bool:
        """Whether node positions changed since the last :meth:`refresh`."""
        return self._built_for_version != self._field.topology_version

    def zone_neighbors(self, node_id: int) -> Set[int]:
        """Zone neighbours of *node_id* (excluding itself)."""
        return set(self._zones[node_id])

    def zone_size(self, node_id: int) -> int:
        """Number of zone neighbours of *node_id*."""
        return len(self._zones[node_id])

    def in_zone(self, node_id: int, other_id: int) -> bool:
        """Whether *other_id* is a zone neighbour of *node_id*."""
        return other_id in self._zones[node_id]

    def average_zone_size(self) -> float:
        """Mean zone size across the field."""
        if not self._zones:
            return 0.0
        return sum(len(z) for z in self._zones.values()) / len(self._zones)

    def isolated_nodes(self) -> List[int]:
        """Nodes with no zone neighbours (cannot participate in dissemination)."""
        return sorted(node_id for node_id, zone in self._zones.items() if not zone)


def compute_zones(field: SensorField, radius_m: float) -> ZoneMap:
    """Convenience constructor for :class:`ZoneMap`."""
    return ZoneMap(field, radius_m)
