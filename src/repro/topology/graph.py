"""The weighted zone graph.

Section 3.2: "If a graphical representation of the network is considered where
the weight w on an edge (i, j) denotes the minimum power at which i needs to
transmit to reach j, DBF finds the shortest path between any two nodes in the
weighted graph."

:func:`build_zone_graph` constructs exactly that graph restricted to one
node's zone (the node plus its zone neighbours).  Edge weights are the power
(mW) of the lowest transmission level that covers the hop distance, so a
shortest path is a minimum-total-transmit-power route.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.radio.power import PowerTable
from repro.topology.field import SensorField


class ZoneGraph:
    """Weighted graph over a zone, with shortest-path helpers.

    The graph is undirected because link costs are symmetric (both endpoints
    need the same power to bridge the same distance).
    """

    def __init__(self, graph: nx.Graph, center: int) -> None:
        self.graph = graph
        self.center = center

    @property
    def nodes(self) -> Set[int]:
        """Node ids in the zone graph (zone neighbours plus the centre)."""
        return set(self.graph.nodes)

    def edge_weight(self, a: int, b: int) -> float:
        """Power cost of the direct link ``a - b``."""
        return self.graph.edges[a, b]["weight"]

    def has_edge(self, a: int, b: int) -> bool:
        """Whether *a* can reach *b* in a single hop inside the zone."""
        return self.graph.has_edge(a, b)

    def shortest_path(self, source: int, target: int) -> Optional[List[int]]:
        """Minimum-power path from *source* to *target*, or ``None``."""
        try:
            return nx.shortest_path(self.graph, source, target, weight="weight")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None

    def shortest_path_cost(self, source: int, target: int) -> Optional[float]:
        """Total power cost of the minimum-power path, or ``None``."""
        try:
            return nx.shortest_path_length(self.graph, source, target, weight="weight")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None

    def neighbors(self, node_id: int) -> List[int]:
        """Direct (single-hop) neighbours of *node_id* within the zone graph."""
        return list(self.graph.neighbors(node_id))


def link_cost(
    field: SensorField,
    power_table: PowerTable,
    a: int,
    b: int,
) -> Optional[float]:
    """Power (mW) of the lowest level that covers the ``a - b`` distance.

    Returns ``None`` when the nodes are out of range even at maximum power.
    """
    distance = field.distance(a, b)
    if distance > power_table.max_range_m + 1e-9:
        return None
    return power_table.level_for_distance(distance).power_mw


def build_zone_graph(
    field: SensorField,
    power_table: PowerTable,
    center: int,
    zone_members: Iterable[int],
) -> ZoneGraph:
    """Build the weighted graph over ``{center} | zone_members``.

    Edges connect every pair of zone members that are within the maximum
    transmission range of each other; the weight is the minimum power needed
    for that hop.
    """
    members = set(zone_members) | {center}
    graph = nx.Graph()
    graph.add_nodes_from(members)
    member_list = sorted(members)
    for i, a in enumerate(member_list):
        for b in member_list[i + 1 :]:
            cost = link_cost(field, power_table, a, b)
            if cost is not None:
                graph.add_edge(a, b, weight=cost, distance=field.distance(a, b))
    return ZoneGraph(graph, center)


def all_pairs_costs(zone_graph: ZoneGraph) -> Dict[Tuple[int, int], float]:
    """All-pairs minimum-power costs inside a zone graph (used by tests to
    validate the distributed Bellman-Ford implementation)."""
    costs: Dict[Tuple[int, int], float] = {}
    lengths = dict(nx.all_pairs_dijkstra_path_length(zone_graph.graph, weight="weight"))
    for source, targets in lengths.items():
        for target, cost in targets.items():
            costs[(source, target)] = cost
    return costs
