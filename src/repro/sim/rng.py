"""Named, independently seeded random streams.

Stochastic processes in the simulation (packet arrivals, failure arrivals,
repair durations, MAC backoff, mobility) each draw from their own stream so
that changing e.g. the failure seed does not perturb the workload.  Streams
are derived deterministically from a master seed and the stream name, so a
``(seed, name)`` pair always yields the same sequence.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def spawn_seed(master_seed: int, *tokens: object) -> int:
    """Derive an independent child seed from *master_seed* and a spawn key.

    The sweep subsystem gives every job in a parameter grid its own master
    seed derived from the sweep seed and the job's stable identity (its spawn
    key), so jobs are statistically independent yet fully reproducible: the
    same ``(seed, tokens)`` always yields the same child seed, regardless of
    how many jobs run, in which order, or on how many workers.
    """
    material = ":".join([str(int(master_seed))] + [str(t) for t in tokens])
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """Factory and registry of named :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream registered under *name*, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(self._derive_seed(name))
        return self._streams[name]

    def _derive_seed(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.master_seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    # Convenience draws -----------------------------------------------------

    def exponential(self, name: str, mean: float) -> float:
        """Draw from an exponential distribution with the given *mean*."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return self.stream(name).expovariate(1.0 / mean)

    def uniform(self, name: str, low: float, high: float) -> float:
        """Draw uniformly from ``[low, high]``."""
        if high < low:
            raise ValueError(f"invalid uniform bounds ({low}, {high})")
        return self.stream(name).uniform(low, high)

    def randint(self, name: str, low: int, high: int) -> int:
        """Draw an integer uniformly from ``[low, high]`` inclusive."""
        return self.stream(name).randint(low, high)

    def choice(self, name: str, items):
        """Pick one element of *items* uniformly at random."""
        return self.stream(name).choice(items)

    def sample(self, name: str, items, k: int):
        """Sample *k* distinct elements of *items*."""
        return self.stream(name).sample(items, k)

    def random(self, name: str) -> float:
        """Draw a float uniformly from ``[0, 1)``."""
        return self.stream(name).random()

    def spawn(self, *tokens: object) -> "RandomStreams":
        """A child registry whose master seed is derived via :func:`spawn_seed`.

        Children are independent of the parent and of each other (different
        tokens), and deterministic in the parent seed and the tokens.
        """
        return RandomStreams(spawn_seed(self.master_seed, *tokens))

    def reset(self) -> None:
        """Re-seed every existing stream back to its initial state.

        Streams are re-seeded *in place* (``Random.seed`` resets the state a
        fresh ``Random(seed)`` would have) so that callers holding a stream
        object — e.g. the MAC delay model's cached backoff stream — observe
        the reset instead of drawing from a stale generator.
        """
        for name, stream in self._streams.items():
            stream.seed(self._derive_seed(name))
