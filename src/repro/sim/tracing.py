"""Structured trace log for simulation runs.

Traces are lists of :class:`TraceRecord` entries.  They are primarily used by
the test-suite to assert on protocol behaviour (e.g. "the destination sent its
REQ to the SCONE after ``tau_DAT`` expired") without coupling tests to internal
state, and by the examples to print readable timelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """A single trace entry.

    Attributes:
        time: Simulation time of the record.
        category: Coarse grouping, e.g. ``"packet"``, ``"timer"``, ``"failure"``.
        label: Short description, e.g. ``"ADV A->broadcast"``.
        detail: Arbitrary structured payload.
    """

    time: float
    category: str
    label: str
    detail: Any = None


class TraceLog:
    """Append-only list of :class:`TraceRecord` with simple query helpers."""

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []

    def record(self, time: float, category: str, label: str, detail: Any = None) -> None:
        """Append a record."""
        self._records.append(TraceRecord(time, category, label, detail))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]

    @property
    def records(self) -> List[TraceRecord]:
        """The underlying record list (do not mutate)."""
        return self._records

    def filter(
        self,
        category: Optional[str] = None,
        label_contains: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Return records matching all supplied criteria."""
        out = []
        for rec in self._records:
            if category is not None and rec.category != category:
                continue
            if label_contains is not None and label_contains not in rec.label:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def clear(self) -> None:
        """Drop all records."""
        self._records.clear()

    def format(self, limit: Optional[int] = None) -> str:
        """Human-readable multi-line rendering (used by examples)."""
        rows = self._records if limit is None else self._records[:limit]
        return "\n".join(
            f"[{rec.time:10.4f}] {rec.category:<8} {rec.label}" for rec in rows
        )
