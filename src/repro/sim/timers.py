"""Cancellable, restartable timers.

The SPMS protocol is built around two timers per outstanding data item:
``tau_ADV`` (wait for a closer node to advertise) and ``tau_DAT`` (wait for
requested data).  :class:`Timer` wraps event scheduling with the
start/cancel/restart life cycle those timers need.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.events import Event


class Timer:
    """A one-shot timer bound to a simulator.

    The timer is created idle; :meth:`start` schedules its expiry callback,
    :meth:`cancel` aborts it, and :meth:`restart` is cancel-then-start.

    Args:
        sim: Owning simulator.
        timeout: Default duration used when :meth:`start` is called without an
            explicit duration.
        callback: Invoked when the timer expires.
        name: Label used in traces.
    """

    def __init__(
        self,
        sim: Simulator,
        timeout: float,
        callback: Callable[[], None],
        name: str = "timer",
    ) -> None:
        if timeout < 0:
            raise ValueError(f"timeout must be non-negative, got {timeout}")
        self._sim = sim
        self.timeout = timeout
        self._callback = callback
        self.name = name
        self._event: Optional[Event] = None
        self.expirations = 0
        self.starts = 0
        self.cancellations = 0

    # ------------------------------------------------------------------ state

    @property
    def running(self) -> bool:
        """Whether the timer is currently armed."""
        return self._event is not None and not self._event.cancelled

    @property
    def expires_at(self) -> Optional[float]:
        """Absolute expiry time if armed, else ``None``."""
        if self.running:
            assert self._event is not None
            return self._event.time
        return None

    # ---------------------------------------------------------------- control

    def start(self, duration: Optional[float] = None) -> None:
        """Arm the timer.  Raises if it is already running."""
        if self.running:
            raise RuntimeError(f"timer {self.name!r} is already running")
        self.starts += 1
        self._event = self._sim.schedule(
            self.timeout if duration is None else duration,
            self._expire,
            name=self.name,
        )

    def cancel(self) -> None:
        """Disarm the timer; no-op if it is not running."""
        if self.running:
            assert self._event is not None
            self._event.cancel()
            self.cancellations += 1
        self._event = None

    def restart(self, duration: Optional[float] = None) -> None:
        """Cancel (if needed) and start again."""
        self.cancel()
        self.start(duration)

    def _expire(self) -> None:
        self._event = None
        self.expirations += 1
        self._callback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"expires_at={self.expires_at}" if self.running else "idle"
        return f"Timer({self.name!r}, timeout={self.timeout}, {state})"
