"""Discrete-event simulation kernel.

This package is the substrate on which every experiment in the reproduction
runs.  It provides:

* :class:`~repro.sim.events.Event` and :class:`~repro.sim.events.EventQueue` —
  a binary-heap event calendar with stable FIFO ordering for simultaneous
  events and O(log n) cancellation.
* :class:`~repro.sim.engine.Simulator` — the event loop, with scheduling
  helpers, wall-clock safety limits and run-until predicates.
* :class:`~repro.sim.timers.Timer` — restartable, cancellable timers used to
  implement the protocol timeouts (``tau_ADV`` and ``tau_DAT`` in the paper).
* :class:`~repro.sim.rng.RandomStreams` — named, independently seeded random
  streams so that e.g. the failure process and the workload process can be
  varied independently while keeping runs reproducible.
* :class:`~repro.sim.tracing.TraceLog` — a structured event trace used by the
  tests and by debugging tooling.

The kernel is deliberately dependency-free (no SimPy is available offline);
it is a classic event-calendar design.
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.rng import RandomStreams
from repro.sim.timers import Timer
from repro.sim.tracing import TraceLog, TraceRecord

__all__ = [
    "Event",
    "EventQueue",
    "RandomStreams",
    "Simulator",
    "Timer",
    "TraceLog",
    "TraceRecord",
]
