"""Event calendar primitives for the discrete-event kernel.

An :class:`Event` is a scheduled callback with a firing time.  The
:class:`EventQueue` is a binary heap keyed on ``(time, sequence)`` so that two
events scheduled for the same simulated time fire in the order they were
scheduled (FIFO tie-breaking), which keeps protocol traces deterministic.

Cancellation is *lazy*: cancelled events stay in the heap but are skipped when
popped.  This keeps cancellation O(1) which matters because the SPMS protocol
cancels a large number of ``tau_ADV`` timers.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=False)
class Event:
    """A single scheduled occurrence in simulated time.

    Attributes:
        time: Absolute simulation time at which the event fires.
        action: Zero-argument callable invoked when the event fires.
        name: Optional human-readable label used in traces and error messages.
        payload: Optional arbitrary data carried for inspection/debugging.
    """

    time: float
    action: Callable[[], None]
    name: str = ""
    payload: Any = None
    sequence: int = field(default=-1, compare=False)
    _cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so it is skipped when its firing time arrives."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._cancelled

    def fire(self) -> None:
        """Invoke the event's action (does nothing if cancelled)."""
        if not self._cancelled:
            self.action()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        label = self.name or getattr(self.action, "__name__", "<callable>")
        return f"Event(t={self.time:.6f}, {label}, {state})"


class EventQueue:
    """Binary-heap event calendar with FIFO tie-breaking.

    The queue assigns each pushed event a monotonically increasing sequence
    number; the heap is ordered by ``(time, sequence)``.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        """Number of live (non-cancelled) events.  O(n); intended for tests
        and diagnostics, not for hot paths."""
        return sum(1 for _, _, event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None

    def push(self, event: Event) -> Event:
        """Insert *event* into the calendar and return it."""
        if event.time < 0:
            raise ValueError(f"event time must be non-negative, got {event.time}")
        event.sequence = next(self._counter)
        heapq.heappush(self._heap, (event.time, event.sequence, event))
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event.

        Returns ``None`` when no live events remain.  Cancelled events found
        on the way are discarded silently.
        """
        while self._heap:
            _, _, event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, or ``None``."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][0]

    def cancel(self, event: Event) -> None:
        """Cancel *event*; alias for ``event.cancel()`` kept for symmetry with
        :meth:`push`."""
        event.cancel()

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
