"""Event calendar primitives for the discrete-event kernel.

An :class:`Event` is a scheduled callback with a firing time.  The
:class:`EventQueue` is a binary heap of events ordered by ``(time, sequence)``
so that two events scheduled for the same simulated time fire in the order
they were scheduled (FIFO tie-breaking), which keeps protocol traces
deterministic.

This module is the hottest code in the repository — every simulated
transmission, timer and delivery passes through it — so it trades a little
generality for throughput:

* :class:`Event` is a ``__slots__`` class (no per-event ``__dict__``) and the
  heap stores the events themselves (ordered via :meth:`Event.__lt__`), not
  ``(time, seq, event)`` wrapper tuples.
* The queue tracks its live-event count incrementally, making ``len()`` and
  truth-testing O(1) even with many lazily-cancelled entries in the heap.
* :meth:`EventQueue.pop_due` fuses the peek/pop pair the simulation loop
  needs into a single heap traversal.

Cancellation is *lazy*: cancelled events stay in the heap but are skipped when
popped.  This keeps cancellation O(1) which matters because the SPMS protocol
cancels a large number of ``tau_ADV`` timers.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class Event:
    """A single scheduled occurrence in simulated time.

    Attributes:
        time: Absolute simulation time at which the event fires.
        action: Zero-argument callable invoked when the event fires.
        name: Optional human-readable label used in traces and error messages.
        payload: Optional arbitrary data carried for inspection/debugging.
        sequence: Queue-assigned FIFO tie-breaker (-1 until pushed).
        cancelled: Whether the event has been cancelled.
    """

    __slots__ = ("time", "action", "name", "payload", "sequence", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        action: Callable[[], None],
        name: str = "",
        payload: Any = None,
        sequence: int = -1,
    ) -> None:
        self.time = time
        self.action = action
        self.name = name
        self.payload = payload
        self.sequence = sequence
        self.cancelled = False
        # Owning queue while the event sits live in a heap; lets cancel()
        # keep the queue's live count exact without a per-cancel scan.
        self._queue: Optional["EventQueue"] = None

    def __lt__(self, other: "Event") -> bool:
        # Heap ordering: (time, sequence) without allocating key tuples.
        if self.time != other.time:
            return self.time < other.time
        return self.sequence < other.sequence

    def cancel(self) -> None:
        """Mark the event so it is skipped when its firing time arrives."""
        if not self.cancelled:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                queue._live -= 1
                self._queue = None

    def fire(self) -> None:
        """Invoke the event's action (does nothing if cancelled)."""
        if not self.cancelled:
            self.action()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        label = self.name or getattr(self.action, "__name__", "<callable>")
        return f"Event(t={self.time:.6f}, {label}, {state})"


class EventQueue:
    """Binary-heap event calendar with FIFO tie-breaking.

    The queue assigns each pushed event a monotonically increasing sequence
    number; the heap is ordered by ``(time, sequence)``.  The live (i.e.
    non-cancelled) event count is maintained incrementally: ``len(queue)``
    and ``bool(queue)`` are O(1).
    """

    __slots__ = ("_heap", "_next_sequence", "_live")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._next_sequence = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events.  O(1)."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> Event:
        """Insert *event* into the calendar and return it."""
        if event.time < 0:
            raise ValueError(f"event time must be non-negative, got {event.time}")
        event.sequence = self._next_sequence
        self._next_sequence += 1
        if not event.cancelled:
            event._queue = self
            self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event.

        Returns ``None`` when no live events remain.  Cancelled events found
        on the way are discarded silently.
        """
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if not event.cancelled:
                event._queue = None
                self._live -= 1
                return event
        return None

    def pop_due(self, until: Optional[float] = None) -> Optional[Event]:
        """Pop the earliest live event, unless it fires after *until*.

        The fused peek+pop the simulation loop runs once per event: a single
        heap traversal discards cancelled entries from the top, then either
        pops the earliest live event (returning it) or — when that event
        fires after *until* — leaves it in place and returns ``None``.
        After a ``None`` return, ``bool(queue)`` distinguishes "calendar
        exhausted" from "next event beyond the horizon".
        """
        heap = self._heap
        while heap:
            event = heap[0]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            if until is not None and event.time > until:
                return None
            heapq.heappop(heap)
            event._queue = None
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, or ``None``."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0].time

    def cancel(self, event: Event) -> None:
        """Cancel *event*; alias for ``event.cancel()`` kept for symmetry with
        :meth:`push`."""
        event.cancel()

    def clear(self) -> None:
        """Drop every pending event."""
        for event in self._heap:
            event._queue = None
        self._heap.clear()
        self._live = 0
