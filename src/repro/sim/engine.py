"""The discrete-event simulation loop.

:class:`Simulator` owns the event calendar, the simulation clock and the named
random streams.  Protocol code never advances the clock directly; it only
schedules callbacks relative to ``now``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.events import Event, EventQueue
from repro.sim.rng import RandomStreams
from repro.sim.tracing import TraceLog


class SimulationError(RuntimeError):
    """Raised when the simulation is driven into an invalid state."""


class Simulator:
    """Event-driven simulation engine.

    Args:
        seed: Master seed for all named random streams.
        trace: When true, every fired event is appended to :attr:`trace_log`.

    Example:
        >>> sim = Simulator(seed=1)
        >>> fired = []
        >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [5.0]
    """

    def __init__(self, seed: int = 0, trace: bool = False) -> None:
        self._now = 0.0
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self._events_processed = 0
        self.rng = RandomStreams(seed)
        self.trace_enabled = trace
        self.trace_log = TraceLog()

    # ------------------------------------------------------------------ clock

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live events still in the calendar."""
        return len(self._queue)

    # -------------------------------------------------------------- scheduling

    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        name: str = "",
        payload: Any = None,
    ) -> Event:
        """Schedule *action* to run ``delay`` time units from now.

        Args:
            delay: Non-negative offset from the current simulation time.
            action: Zero-argument callable.
            name: Optional label for traces.
            payload: Optional data attached to the event.

        Returns:
            The scheduled :class:`Event`, which can be cancelled.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(Event(self._now + delay, action, name, payload))

    def schedule_at(
        self,
        time: float,
        action: Callable[[], None],
        name: str = "",
        payload: Any = None,
    ) -> Event:
        """Schedule *action* at absolute simulation time *time*."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        return self._queue.push(Event(time, action, name, payload))

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        self._queue.cancel(event)

    # ------------------------------------------------------------------- run

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Run the event loop.

        Args:
            until: Stop once the clock would pass this time (events exactly at
                ``until`` still fire).
            max_events: Safety limit on the number of events to process.
            stop_when: Predicate evaluated after every event; the loop stops
                as soon as it returns true.

        Returns:
            The simulation time when the loop stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        queue = self._queue
        try:
            if max_events is None and stop_when is None and not self.trace_enabled:
                # Fast path (the overwhelmingly common configuration): one
                # fused heap traversal per event via pop_due, no per-event
                # feature checks, and the processed counter flushed once.
                pop_due = queue.pop_due
                processed = 0
                try:
                    while not self._stopped:
                        event = pop_due(until)
                        if event is None:
                            # bool(queue) is O(1): live events remain, so the
                            # earliest one fires beyond the horizon.
                            if until is not None and queue:
                                self._now = until
                            break
                        time = event.time
                        if time < self._now:
                            raise SimulationError(
                                f"event calendar corrupted: event at {time} "
                                f"earlier than now={self._now}"
                            )
                        self._now = time
                        # pop_due only returns live events and nothing runs
                        # between pop and fire, so invoke the action directly.
                        event.action()
                        processed += 1
                finally:
                    self._events_processed += processed
                return self._now
            processed_this_run = 0
            while True:
                if self._stopped:
                    break
                if max_events is not None and processed_this_run >= max_events:
                    break
                event = queue.pop_due(until)
                if event is None:
                    if until is not None and queue:
                        self._now = until
                    break
                if event.time < self._now:
                    raise SimulationError(
                        f"event calendar corrupted: event at {event.time} "
                        f"earlier than now={self._now}"
                    )
                self._now = event.time
                event.fire()
                self._events_processed += 1
                processed_this_run += 1
                if self.trace_enabled:
                    self.trace_log.record(
                        self._now, "event", event.name or "anonymous", event.payload
                    )
                if stop_when is not None and stop_when():
                    break
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Process exactly one event.  Returns False when the calendar is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        self._now = event.time
        event.fire()
        self._events_processed += 1
        if self.trace_enabled:
            self.trace_log.record(
                self._now, "event", event.name or "anonymous", event.payload
            )
        return True

    def stop(self) -> None:
        """Request the running loop to stop after the current event."""
        self._stopped = True

    def reset(self) -> None:
        """Clear the calendar and rewind the clock (random streams keep state)."""
        self._queue.clear()
        self._now = 0.0
        self._events_processed = 0
        self._stopped = False
