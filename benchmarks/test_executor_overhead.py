"""Supervised-pool overhead benchmark: supervision must cost <= 10%.

PR 9 replaced the executor's plain ``multiprocessing.Pool`` with the
supervised pool (:mod:`repro.experiments.supervisor`): per-worker pipes,
``connection.wait`` multiplexing, deadline tracking, retry bookkeeping.
That machinery runs in the parent while workers simulate, so on a healthy
(fault-free) grid its cost should be polling noise — the acceptance bar is
**supervised wall time <= 1.10x the plain pool** on the quick fig06 grid,
plus a byte-identity check: both executions must produce identical canonical
records.

Both pools run the same jobs with 2 workers, timed back-to-back in one
benchmark so machine load skews both sides equally.  A small constant
epsilon keeps the ratio meaningful when the grid runs fast enough that
process-spawn jitter dominates the measurement.
"""

import multiprocessing
import time

from benchmarks.conftest import emit, run_once
from repro.experiments.executor import _run_job, execute_jobs
from repro.experiments.matrix import get_matrix

#: The tentpole's acceptance bar: supervision adds at most 10% wall time.
MAX_OVERHEAD_FACTOR = 1.10

#: Absolute slack (seconds) added to the bar: worker spawn/teardown is a
#: fixed cost, so on a sub-second grid it would dominate the ratio and the
#: test would measure process-start jitter instead of supervision overhead.
EPSILON_S = 0.25


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return multiprocessing.get_context("spawn")


def _run_plain_pool(jobs):
    """The pre-supervisor executor: a bare Pool.imap_unordered over the jobs."""
    records = {}
    started = time.perf_counter()
    by_index = {job.index: job for job in jobs}
    with _pool_context().Pool(processes=2) as pool:
        for index, record in pool.imap_unordered(_run_job, jobs, chunksize=1):
            records[by_index[index].key] = record
    return records, time.perf_counter() - started


def _run_supervised_pool(jobs):
    started = time.perf_counter()
    records, report = execute_jobs(jobs, workers=2)
    assert report.quarantined == 0 and not report.interrupted
    return records, time.perf_counter() - started


def _measure_overhead(scale):
    jobs = get_matrix("fig06", scale=scale).expand()[:4]
    plain_records, plain_s = _run_plain_pool(jobs)
    supervised_records, supervised_s = _run_supervised_pool(jobs)
    return jobs, plain_records, plain_s, supervised_records, supervised_s


def test_supervised_pool_overhead(benchmark, figure_scale):
    jobs, plain_records, plain_s, supervised_records, supervised_s = run_once(
        benchmark, _measure_overhead, figure_scale
    )

    emit("\n=== Supervised pool overhead vs plain Pool (fig06 quick grid) ===")
    emit(f"{'jobs':>6} {'plain (s)':>10} {'supervised (s)':>15} {'factor':>8}")
    factor = supervised_s / plain_s
    emit(f"{len(jobs):>6} {plain_s:>10.3f} {supervised_s:>15.3f} {factor:>7.2f}x")

    # Byte-identity first: supervision must not change a single record.
    assert set(supervised_records) == set(plain_records)
    for key, record in plain_records.items():
        assert supervised_records[key].canonical_json() == record.canonical_json(), key

    budget_s = plain_s * MAX_OVERHEAD_FACTOR + EPSILON_S
    assert supervised_s <= budget_s, (
        f"supervised pool cost {factor:.2f}x the plain pool "
        f"({plain_s:.3f} s -> {supervised_s:.3f} s); the acceptance bar "
        f"is <= {MAX_OVERHEAD_FACTOR}x + {EPSILON_S:g} s spawn allowance "
        f"({budget_s:.3f} s)"
    )
