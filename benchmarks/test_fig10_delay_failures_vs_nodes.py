"""Figure 10 — delay vs number of nodes with transient node failures.

Four curves: SPMS / SPIN (failure free) and F-SPMS / F-SPIN (with the Table 1
failure process).  Paper shape: failures increase delay because destinations
must wait for ``tau_ADV`` / ``tau_DAT`` timeouts and re-request over backup
routes, and the effect grows with the field size (longer paths activate more
failures).
"""

from repro.experiments.figures import figure10_delay_failures_vs_nodes

from benchmarks.conftest import emit, print_figure, run_once


def test_fig10_delay_failures_vs_nodes(benchmark, figure_scale):
    sweep = run_once(benchmark, figure10_delay_failures_vs_nodes, figure_scale)
    print_figure(
        "Figure 10: average delay (ms) vs number of nodes, with and without failures",
        sweep,
        "average_delay_ms",
        note="Curves: spms/spin (failure free), f-spms/f-spin (transient failures).",
    )
    delivery = {
        name: [round(r.delivery_ratio, 3) for r in results]
        for name, results in sweep.results.items()
    }
    emit("Delivery ratios:", delivery)

    assert set(sweep.results) == {"spms", "spin", "f-spms", "f-spin"}
    f_spms = sweep.series("f-spms", "average_delay_ms")
    spms = sweep.series("spms", "average_delay_ms")
    f_spin = sweep.series("f-spin", "average_delay_ms")
    spin = sweep.series("spin", "average_delay_ms")
    # Failures never make things faster (averaged over the sweep).
    assert sum(f_spms) >= sum(spms) * 0.98
    assert sum(f_spin) >= sum(spin) * 0.98
    # Even under failures SPMS delivers the overwhelming majority of data.
    assert all(r.delivery_ratio > 0.9 for r in sweep.results["f-spms"])
    # Failures were actually injected in the F- runs.
    assert all(r.failures_injected > 0 for r in sweep.results["f-spms"])
