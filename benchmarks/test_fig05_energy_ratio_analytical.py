"""Figure 5 — analytical SPIN/SPMS energy ratio vs transmission radius.

Paper shape: the ratio is 1 at one hop and grows steeply with the radius
(SPMS does "substantially better in saving energy" as the zone widens).
"""

import pytest

from repro.experiments.figures import figure5_energy_ratio

from benchmarks.conftest import print_series, run_once


def test_fig05_energy_ratio(benchmark):
    series = run_once(benchmark, figure5_energy_ratio, tuple(range(1, 31)))
    print_series(
        "Figure 5: E_SPIN / E_SPMS vs transmission radius (analytical, alpha=3.5)",
        series,
        "radius (hops)",
        "ratio",
    )

    ratios = [ratio for _, ratio in series]
    assert ratios[0] == pytest.approx(1.0)
    assert all(b >= a for a, b in zip(ratios, ratios[1:]))
    # By a 30-hop radius SPMS wins by an order of magnitude.
    assert ratios[-1] > 10.0
