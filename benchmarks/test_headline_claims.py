"""Headline claims from the abstract and Section 5.

* Static failure-free all-to-all: SPMS uses 26-43 % less energy (about 30 %
  on average) and delivers data roughly an order of magnitude faster.
* With mobility the energy saving drops to 5-21 %.
* Cluster-based hierarchical traffic: SPMS uses 35-59 % less energy.

This benchmark reuses the cached Figure 6/8/12/13 sweeps, evaluates every
claim and prints a pass/fail table.  The direction of every claim must hold;
absolute magnitudes are recorded for EXPERIMENTS.md.
"""

from repro.experiments.claims import evaluate_headline_claims, format_claims
from repro.experiments.figures import (
    figure6_energy_vs_nodes,
    figure8_delay_vs_nodes,
    figure12_energy_mobility,
    figure13_energy_cluster,
)

from benchmarks.conftest import emit, run_once


def test_headline_claims(benchmark, figure_scale):
    def evaluate():
        static_energy = figure6_energy_vs_nodes(figure_scale)
        static_delay = figure8_delay_vs_nodes(figure_scale)
        mobility_energy = figure12_energy_mobility(figure_scale)
        cluster_energy = figure13_energy_cluster(figure_scale)
        return evaluate_headline_claims(
            static_energy, static_delay, mobility_energy, cluster_energy
        )

    checks = run_once(benchmark, evaluate)

    emit("\n\n=== Headline claims (paper vs this reproduction) ===")
    emit(format_claims(checks))

    assert len(checks) == 4
    for check in checks:
        assert check.holds, f"claim does not hold: {check.claim} (measured {check.measured:.2f})"
    by_claim = {check.claim: check.measured for check in checks}
    # Static energy saving should be substantial (paper band: 26-43 %).
    assert by_claim["static failure-free energy saving (all-to-all)"] > 20.0
    # SPMS must be faster on average.
    assert by_claim["static failure-free delay ratio SPIN/SPMS"] > 1.0
    # Mobility saving is positive but smaller than the static saving.
    assert (
        by_claim["energy saving with mobility"]
        < by_claim["static failure-free energy saving (all-to-all)"]
    )
    # Cluster saving is the largest of the energy claims (paper: 35-59 %).
    assert by_claim["cluster-based hierarchical energy saving"] > 25.0
