"""Figure 9 — end-to-end delay vs transmission radius (fixed node count).

Paper shape: SPMS is faster than SPIN across the sweep, with the difference
smallest at the smallest radius.  (The paper additionally reports delay
*decreasing* with the radius; under our MAC model the ``G n**2`` contention
growth outweighs the hop-count reduction, so absolute delays grow — the
protocol ordering, which is the protocol-level claim, is preserved.  See
EXPERIMENTS.md for the discussion.)
"""

from repro.experiments.claims import delay_ratios_across
from repro.experiments.figures import figure9_delay_vs_radius

from benchmarks.conftest import emit, print_figure, run_once


def test_fig09_delay_vs_radius(benchmark, figure_scale):
    sweep = run_once(benchmark, figure9_delay_vs_radius, figure_scale)
    print_figure(
        f"Figure 9: average end-to-end delay (ms) vs transmission radius "
        f"({figure_scale.fixed_num_nodes} nodes)",
        sweep,
        "average_delay_ms",
        note="Paper: SPMS faster throughout; smallest difference at small radii.",
    )
    ratios = delay_ratios_across(sweep)
    emit("SPIN/SPMS delay ratio per point:", [round(r, 2) for r in ratios])

    # SPMS is faster than SPIN for every radius of 20 m and above (at the
    # smallest radii multi-hop routes barely exist and the curves touch).
    for radius, ratio in zip(sweep.values, ratios):
        if radius >= 20.0:
            assert ratio > 1.0, f"SPMS slower at radius {radius}"
    # The SPMS advantage grows with the radius.
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 1.2
