"""Figure 12 — energy vs transmission radius with node mobility.

Paper shape: SPMS still outperforms SPIN, but the saving shrinks to 5-21 %
because every mobility epoch forces a distributed Bellman-Ford re-execution
whose energy is charged to SPMS.
"""

from repro.experiments.claims import energy_savings_across
from repro.experiments.figures import figure12_energy_mobility

from benchmarks.conftest import emit, print_figure, run_once


def test_fig12_energy_mobility(benchmark, figure_scale):
    sweep = run_once(benchmark, figure12_energy_mobility, figure_scale)
    print_figure(
        f"Figure 12: energy per data item (uJ) vs transmission radius with mobility "
        f"({figure_scale.fixed_num_nodes} nodes)",
        sweep,
        "energy_per_item_uj",
        note="Paper: SPMS still wins, but only by 5-21 % once routing upkeep is charged.",
    )
    savings = energy_savings_across(sweep)
    emit("SPMS energy saving per point (%):", [round(s, 1) for s in savings])
    emit(
        "SPMS routing energy per run (uJ):",
        [round(r.routing_energy_uj, 1) for r in sweep.results["spms"]],
    )

    # Routing maintenance energy is charged to SPMS only.
    assert all(r.routing_energy_uj > 0 for r in sweep.results["spms"])
    assert all(r.routing_energy_uj == 0 for r in sweep.results["spin"])
    # SPMS still saves energy on average across the sweep, but less than in
    # the static case (the static saving at the same scale exceeds 40 %).
    mean_saving = sum(savings) / len(savings)
    assert 0.0 < mean_saving < 60.0
    # Data still gets delivered despite the topology changes.
    assert all(r.delivery_ratio > 0.9 for r in sweep.results["spms"])
