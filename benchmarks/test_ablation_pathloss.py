"""Ablation — power-vs-range scaling exponent (path-loss law).

The paper's energy argument rests on transmit power growing super-linearly
with distance (``d**alpha`` with alpha between 2 and 4), and its analysis
adopts the simplification ``E_r = E_m`` (receive energy equals the lowest
transmission level's energy).  This ablation sweeps the exponent used to
derive the discrete power levels — applying the same ``E_r = E_m`` coupling,
since otherwise a fixed receive power swamps the vanishing transmit powers at
large alpha — and checks that SPMS's energy saving grows with alpha and stays
positive even at the square-law lower bound.
"""

from repro.experiments.claims import energy_saving_percent
from repro.experiments.config import SimulationConfig
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import all_to_all_scenario
from repro.radio.power import build_power_table_for_radius

from benchmarks.conftest import emit, run_once

ALPHAS = (2.0, 3.0, 3.5)
RADIUS_M = 20.0


def test_ablation_pathloss_exponent(benchmark, figure_scale):
    def sweep():
        rows = []
        for alpha in ALPHAS:
            # The paper's E_r = E_m simplification: receive power follows the
            # lowest transmit level of the alpha-scaled table.
            min_level_mw = build_power_table_for_radius(RADIUS_M, alpha=alpha).min_level.power_mw
            config = SimulationConfig(
                num_nodes=figure_scale.fixed_num_nodes,
                packets_per_node=1,
                transmission_radius_m=RADIUS_M,
                power_scaling_alpha=alpha,
                rx_power_mw=min_level_mw,
                arrival_mean_interarrival_ms=50.0,
                seed=figure_scale.seed,
            )
            spms = run_scenario(all_to_all_scenario("spms", config))
            spin = run_scenario(all_to_all_scenario("spin", config))
            rows.append((alpha, spms.energy_per_item_uj, spin.energy_per_item_uj,
                         energy_saving_percent(spin, spms)))
        return rows

    rows = run_once(benchmark, sweep)

    emit("\n\n=== Ablation: power scaling exponent alpha ===")
    emit(f"{'alpha':>8} {'SPMS uJ/item':>14} {'SPIN uJ/item':>14} {'saving %':>10}")
    for alpha, spms_e, spin_e, saving in rows:
        emit(f"{alpha:>8.1f} {spms_e:>14.2f} {spin_e:>14.2f} {saving:>10.1f}")

    savings = [row[3] for row in rows]
    assert all(s > 0.0 for s in savings)
    assert savings[-1] > savings[0]
