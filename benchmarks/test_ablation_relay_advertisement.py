"""Ablation — relay re-advertisement.

SPMS requires every node to advertise data it received once in its zone
(Section 3.2); that is what lets data cross zone boundaries and what gives
destinations a closer PRONE.  This ablation disables re-advertisement and
shows dissemination collapsing to the source's own zone.
"""

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import ScenarioSpec

from benchmarks.conftest import emit, run_once


def _spec(readvertise: bool, figure_scale) -> ScenarioSpec:
    config = SimulationConfig(
        num_nodes=figure_scale.fixed_num_nodes,
        packets_per_node=1,
        # Small radius so the field spans several zones and re-advertisement
        # genuinely matters.
        transmission_radius_m=10.0,
        arrival_mean_interarrival_ms=50.0,
        seed=figure_scale.seed,
    )
    return ScenarioSpec(
        name=f"ablation/readvertise={readvertise}",
        protocol="spms",
        config=config,
        workload="all_to_all",
        protocol_options={"readvertise_received": readvertise},
    )


def test_ablation_relay_advertisement(benchmark, figure_scale):
    def run_both():
        with_readv = run_scenario(_spec(True, figure_scale))
        without_readv = run_scenario(_spec(False, figure_scale))
        return with_readv, without_readv

    with_readv, without_readv = run_once(benchmark, run_both)

    emit("\n\n=== Ablation: relay re-advertisement ===")
    emit(f"{'variant':>22} {'delivery ratio':>15} {'energy/item (uJ)':>17}")
    for label, result in (("re-advertise (paper)", with_readv), ("disabled", without_readv)):
        emit(f"{label:>22} {result.delivery_ratio:>15.3f} {result.energy_per_item_uj:>17.2f}")

    # With re-advertisement everything is delivered; without it, data cannot
    # leave the source's zone and a large share of deliveries never happen.
    assert with_readv.delivery_ratio == 1.0
    assert without_readv.delivery_ratio < 0.6
