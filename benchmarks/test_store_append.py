"""Store-append benchmark: the sidecar index keeps appends O(1) amortized.

The pre-rework ``RunStore`` kept its fingerprint index inside
``manifest.json`` and rewrote the whole manifest on every append, so the
cost of append #N was O(N) and a long sweep's store spent its time
re-serializing an ever-growing index.  The reworked store appends one line
to ``shards/records-*.jsonl`` and one line to the ``index.jsonl`` sidecar.

This benchmark times one 10k-append store against ten fresh 1k-append
stores.  Under the old O(N) manifest rewrite the single big store was ~10x
slower per record than the ten small ones; with the sidecar the two walls
must agree within 2x (the ISSUE's acceptance bar for "O(1) amortized").
"""

import tempfile
from pathlib import Path
from time import perf_counter

from benchmarks.conftest import emit, run_once
from repro.perf.bench import store_append_record
from repro.results import RunStore

#: Acceptance bar: 10k appends into one store vs 1k x 10 fresh stores.
MAX_AMORTIZED_RATIO = 2.0

BIG = 10_000
SMALL = 1_000


def _time_appends(root, records):
    store = RunStore(root, records_per_shard=512)
    started = perf_counter()
    for record in records:
        store.append(record)
    return perf_counter() - started


def _measure_append_scaling():
    records = [store_append_record(i) for i in range(BIG)]
    with tempfile.TemporaryDirectory(prefix="repro-store-scaling-") as tmp:
        base = Path(tmp)
        big_wall = _time_appends(base / "big", records)
        small_wall = sum(
            _time_appends(base / f"small-{chunk}", records[:SMALL])
            for chunk in range(BIG // SMALL)
        )
    return big_wall, small_wall


def test_store_append_is_amortized_constant(benchmark):
    big_wall, small_wall = run_once(benchmark, _measure_append_scaling)

    ratio = big_wall / small_wall
    emit("\n=== RunStore append scaling: one 10k store vs ten fresh 1k stores ===")
    emit(f"{'workload':>24} {'records':>8} {'wall (s)':>9} {'rec/s':>8}")
    emit(f"{'one store x 10k':>24} {BIG:>8} {big_wall:>9.3f} {BIG / big_wall:>8.0f}")
    emit(f"{'ten stores x 1k':>24} {BIG:>8} {small_wall:>9.3f} {BIG / small_wall:>8.0f}")
    emit(f"{'ratio':>24} {ratio:>27.2f}x (bar: <= {MAX_AMORTIZED_RATIO}x)")

    assert ratio <= MAX_AMORTIZED_RATIO, (
        f"append cost grows with store size: 10k-append store took {ratio:.2f}x "
        f"the wall of ten 1k-append stores ({big_wall:.3f}s vs {small_wall:.3f}s); "
        "the sidecar index should keep appends O(1) amortized"
    )
