"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Simulation
figures are expensive, so they run exactly once per benchmark
(``benchmark.pedantic(..., rounds=1, iterations=1)``) and print the
regenerated rows/series so the output can be compared with the paper.

Scale selection: set ``REPRO_BENCH_SCALE=paper`` to run the paper-sized
sweeps (minutes per figure); the default ``bench`` scale keeps every figure
in the tens of seconds while preserving the qualitative shape.
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.experiments import figures


def emit(*parts) -> None:
    """Print one results line (accepts multiple arguments like ``print``)."""
    text = " ".join(str(part) for part in parts)
    sys.stdout.write(text + "\n")
    sys.stdout.flush()


@pytest.fixture(autouse=True)
def _show_results(pytestconfig):
    """Disable output capture while a benchmark runs.

    The regenerated tables are the harness's primary output; they must reach
    the console (and any ``tee``'d log such as ``bench_output.txt``) even when
    the benchmark passes, and pytest only replays captured output for
    failures.
    """
    manager = pytestconfig.pluginmanager.getplugin("capturemanager")
    if manager is None:  # pragma: no cover - capture plugin always present
        yield
        return
    with manager.global_and_fixture_disabled():
        yield


@pytest.fixture(scope="session")
def figure_scale() -> figures.FigureScale:
    """The sweep scale used by every simulated-figure benchmark."""
    if os.environ.get("REPRO_BENCH_SCALE", "bench").lower() == "paper":
        return figures.paper_scale()
    return figures.bench_scale()


def run_once(benchmark, func, *args, **kwargs):
    """Run *func* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_figure(title: str, sweep, metric: str, note: str = "") -> None:
    """Print a regenerated simulation figure as a text table."""
    emit(f"\n=== {title} ===")
    if note:
        emit(note)
    emit(sweep.format_table(metric))


def print_series(title: str, series, x_label: str, y_label: str) -> None:
    """Print an analytical series (Figures 3 and 5)."""
    emit(f"\n=== {title} ===")
    emit(f"{x_label:>14} {y_label:>14}")
    for x, y in series:
        emit(f"{x:>14.2f} {y:>14.4f}")
