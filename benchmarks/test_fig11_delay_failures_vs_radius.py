"""Figure 11 — delay vs transmission radius with transient node failures.

Paper shape: the failure/failure-free difference is small at small radii
(few relays whose failure matters) and grows with the radius, where relay
failures force timeout-driven recovery.
"""

from repro.experiments.figures import figure11_delay_failures_vs_radius

from benchmarks.conftest import print_figure, run_once


def test_fig11_delay_failures_vs_radius(benchmark, figure_scale):
    sweep = run_once(benchmark, figure11_delay_failures_vs_radius, figure_scale)
    print_figure(
        f"Figure 11: average delay (ms) vs transmission radius with failures "
        f"({figure_scale.fixed_num_nodes} nodes)",
        sweep,
        "average_delay_ms",
        note="Curves: spms/spin (failure free), f-spms/f-spin (transient failures).",
    )

    assert set(sweep.results) == {"spms", "spin", "f-spms", "f-spin"}
    f_spms = sweep.series("f-spms", "average_delay_ms")
    spms = sweep.series("spms", "average_delay_ms")
    # Failures never help, and the protocol still delivers.
    assert sum(f_spms) >= sum(spms) * 0.98
    assert all(r.delivery_ratio > 0.9 for r in sweep.results["f-spms"])
    assert all(r.delivery_ratio > 0.9 for r in sweep.results["f-spin"])
    # SPMS (with failures) still beats SPIN (with failures) at larger radii.
    f_spin = sweep.series("f-spin", "average_delay_ms")
    assert f_spms[-1] < f_spin[-1]
