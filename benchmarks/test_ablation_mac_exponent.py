"""Ablation — MAC contention exponent.

The paper models channel-access delay as ``G * n**2`` and notes (Section 4.1,
footnote 1) that models with higher powers of ``n`` or an exponential form
would only bias the comparison further towards SPMS.  This ablation sweeps the
exponent of the polynomial contention model and checks that conclusion: the
SPIN/SPMS delay ratio is monotonically non-decreasing in the exponent.
"""

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import all_to_all_scenario
from repro.mac.contention import PolynomialContention

from benchmarks.conftest import emit, run_once

EXPONENTS = (1.0, 2.0, 3.0)


def _run_with_exponent(exponent: float, num_nodes: int, seed: int):
    config = SimulationConfig(
        num_nodes=num_nodes,
        packets_per_node=1,
        transmission_radius_m=20.0,
        arrival_mean_interarrival_ms=50.0,
        seed=seed,
    )
    results = {}
    for protocol in ("spms", "spin"):
        runner = ExperimentRunner(all_to_all_scenario(protocol, config))
        runner.build()
        # Swap in the ablated contention model before running.
        runner.network.mac_delay.contention = PolynomialContention(
            g=config.csma_g, exponent=exponent
        )
        results[protocol] = runner.run()
    return results


def test_ablation_mac_exponent(benchmark, figure_scale):
    def sweep():
        rows = []
        for exponent in EXPONENTS:
            results = _run_with_exponent(exponent, figure_scale.fixed_num_nodes, figure_scale.seed)
            ratio = results["spin"].average_delay_ms / results["spms"].average_delay_ms
            rows.append((exponent, results["spms"].average_delay_ms,
                         results["spin"].average_delay_ms, ratio))
        return rows

    rows = run_once(benchmark, sweep)

    emit("\n\n=== Ablation: MAC contention exponent (G * n**p) ===")
    emit(f"{'exponent':>10} {'SPMS delay':>12} {'SPIN delay':>12} {'SPIN/SPMS':>11}")
    for exponent, spms_delay, spin_delay, ratio in rows:
        emit(f"{exponent:>10.1f} {spms_delay:>12.2f} {spin_delay:>12.2f} {ratio:>11.2f}")

    ratios = [row[3] for row in rows]
    # Harsher MAC models favour SPMS more (the paper's footnote-1 claim).
    assert all(b >= a * 0.98 for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] > ratios[0]
