"""Figure 6 — energy per packet vs number of nodes (static, failure free).

Paper shape: SPMS consumes 26-43 % less energy than SPIN and the gap widens
as the sensor field grows (SPIN's curve has the higher slope).
"""

from repro.experiments.claims import energy_savings_across
from repro.experiments.figures import figure6_energy_vs_nodes

from benchmarks.conftest import emit, print_figure, run_once


def test_fig06_energy_vs_nodes(benchmark, figure_scale):
    sweep = run_once(benchmark, figure6_energy_vs_nodes, figure_scale)
    print_figure(
        "Figure 6: energy per data item (uJ) vs number of nodes (radius = 20 m)",
        sweep,
        "energy_per_item_uj",
        note="Paper: SPMS saves 26-43 %, gap widens with field size.",
    )
    savings = energy_savings_across(sweep)
    emit("SPMS energy saving per point (%):", [round(s, 1) for s in savings])

    spin = sweep.series("spin", "energy_per_item_uj")
    spms = sweep.series("spms", "energy_per_item_uj")
    # SPMS wins at every field size.
    assert all(s < p for s, p in zip(spms, spin))
    # Energy per item grows with the field for both protocols.
    assert spin[-1] > spin[0]
    assert spms[-1] > spms[0]
    # The absolute gap widens with the number of nodes (SPIN's higher slope).
    gaps = [p - s for p, s in zip(spin, spms)]
    assert gaps[-1] > gaps[0]
    # Everything was actually delivered.
    assert all(r.delivery_ratio == 1.0 for results in sweep.results.values() for r in results)
