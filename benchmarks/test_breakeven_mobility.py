"""Section 5.1.3 — the mobility break-even point.

The paper computes that at least 239.18 packets must be successfully
transmitted between two mobility epochs for SPMS to save energy over SPIN.
This benchmark measures the same quantity for our simulator: the energy of one
distributed Bellman-Ford re-execution divided by the per-packet data-plane
saving of SPMS over SPIN.
"""

import math

from repro.analysis.breakeven import breakeven_packets
from repro.experiments.config import MobilityConfig, SimulationConfig
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import all_to_all_scenario

from benchmarks.conftest import emit, run_once


def test_breakeven_mobility(benchmark, figure_scale):
    config = SimulationConfig(
        num_nodes=figure_scale.fixed_num_nodes,
        packets_per_node=figure_scale.mobility_packets_per_node,
        transmission_radius_m=20.0,
        arrival_mean_interarrival_ms=figure_scale.arrival_mean_interarrival_ms,
        seed=figure_scale.seed,
    )

    def measure():
        static_spms = run_scenario(all_to_all_scenario("spms", config))
        static_spin = run_scenario(all_to_all_scenario("spin", config))
        mobile_spms = run_scenario(
            all_to_all_scenario("spms", config, mobility=MobilityConfig(num_epochs=1))
        )
        rebuilds = max(1, mobile_spms.routing_rebuilds - 1)
        rebuild_energy = mobile_spms.routing_energy_uj / rebuilds
        return {
            "rebuild_energy_uj": rebuild_energy,
            "spin_per_packet_uj": static_spin.energy_per_item_uj,
            "spms_per_packet_uj": static_spms.energy_per_item_uj,
            "breakeven_packets": breakeven_packets(
                rebuild_energy,
                static_spin.energy_per_item_uj,
                static_spms.energy_per_item_uj,
            ),
        }

    result = run_once(benchmark, measure)

    emit("\n\n=== Mobility break-even (paper: 239.18 packets) ===")
    for key, value in result.items():
        emit(f"  {key:<22} {value:10.2f}")

    # The break-even must be finite (SPMS does save energy per packet) and of
    # a magnitude that a realistic inter-epoch traffic volume can amortise.
    assert math.isfinite(result["breakeven_packets"])
    assert 1.0 < result["breakeven_packets"] < 10_000.0
    assert result["spms_per_packet_uj"] < result["spin_per_packet_uj"]
