"""Figure 7 — energy per packet vs transmission radius (fixed node count).

Paper shape: at small radii the protocols are close (zones have few neighbours
and routes are mostly single-hop); as the radius grows SPMS increasingly
outperforms SPIN because multi-hop minimum-power routes replace long
maximum-power transmissions.
"""

from repro.experiments.claims import energy_savings_across
from repro.experiments.figures import figure7_energy_vs_radius

from benchmarks.conftest import emit, print_figure, run_once


def test_fig07_energy_vs_radius(benchmark, figure_scale):
    sweep = run_once(benchmark, figure7_energy_vs_radius, figure_scale)
    print_figure(
        f"Figure 7: energy per data item (uJ) vs transmission radius "
        f"({figure_scale.fixed_num_nodes} nodes)",
        sweep,
        "energy_per_item_uj",
        note="Paper: SPMS increasingly outperforms SPIN as the radius grows.",
    )
    savings = energy_savings_across(sweep)
    emit("SPMS energy saving per point (%):", [round(s, 1) for s in savings])

    spin = sweep.series("spin", "energy_per_item_uj")
    spms = sweep.series("spms", "energy_per_item_uj")
    assert all(s <= p for s, p in zip(spms, spin))
    # The relative saving grows with the radius.
    assert savings[-1] > savings[0]
    # SPIN's energy rises steeply with the radius (square-law transmit power).
    assert spin[-1] > 2.0 * spin[0]
