"""Ablation — SPMS timeout sensitivity.

``TOutADV`` controls how long a destination waits for a closer relay to
advertise before pulling the data over the multi-hop route.  A small value
(the Table 1 spirit) minimises delay but pulls data over longer routed paths,
costing energy; a large value lets nearby relays serve almost every request,
saving energy at the price of idle waiting.  This ablation sweeps ``TOutADV``
and records that delay/energy trade-off.
"""

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import ScenarioSpec

from benchmarks.conftest import emit, run_once

TOUT_ADV_VALUES = (1.0, 2.0, 8.0, 25.0)


def _spec(tout_adv: float, figure_scale) -> ScenarioSpec:
    config = SimulationConfig(
        num_nodes=figure_scale.fixed_num_nodes,
        packets_per_node=1,
        transmission_radius_m=20.0,
        arrival_mean_interarrival_ms=50.0,
        seed=figure_scale.seed,
    )
    return ScenarioSpec(
        name=f"ablation/tout_adv={tout_adv}",
        protocol="spms",
        config=config,
        workload="all_to_all",
        protocol_options={"tout_adv_ms": tout_adv},
    )


def test_ablation_tout_adv(benchmark, figure_scale):
    def sweep():
        return {t: run_scenario(_spec(t, figure_scale)) for t in TOUT_ADV_VALUES}

    results = run_once(benchmark, sweep)

    emit("\n\n=== Ablation: SPMS TOutADV sensitivity ===")
    emit(f"{'TOutADV (ms)':>13} {'delay (ms)':>11} {'energy/item':>13} {'delivered':>10}")
    for tout, result in results.items():
        emit(
            f"{tout:>13.1f} {result.average_delay_ms:>11.2f} "
            f"{result.energy_per_item_uj:>13.2f} {result.delivery_ratio:>9.0%}"
        )

    # Correctness is independent of the timeout.
    assert all(r.delivery_ratio == 1.0 for r in results.values())
    # A very large TOutADV (waiting out the timer on every multi-hop pull)
    # costs noticeably more delay than the small Table-1-like values...
    assert results[25.0].average_delay_ms > results[2.0].average_delay_ms
    # ...but saves energy, because waiting lets a nearby relay serve the
    # request instead of pulling the data over a longer routed path.
    energies = [results[t].energy_per_item_uj for t in TOUT_ADV_VALUES]
    assert all(b <= a * 1.05 for a, b in zip(energies, energies[1:]))
    assert energies[-1] < energies[0]
