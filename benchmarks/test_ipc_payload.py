"""IPC payload benchmark: streamed record summaries vs shipped collectors.

The pre-redesign executor returned ``(index, ScenarioResult, MetricsCollector)``
from every worker — the collector alone carries one entry per (item,
destination) delivery, so the pickled payload grew with the traffic volume.
The redesigned executor reduces to a :class:`MetricsSummary` in-process and
ships a single :class:`RunRecord` per job.

This benchmark runs the full fig06 grid and measures both pickled payloads
per job.  The acceptance bar of the redesign is a >= 5x total reduction; at
bench scale the observed factor is far larger and grows with node count
(the record payload is O(1) while the collector payload is O(deliveries)).
"""

import pickle

from benchmarks.conftest import emit, run_once
from repro.experiments.matrix import get_matrix
from repro.experiments.runner import ExperimentRunner
from repro.results import ScenarioResult

#: The redesign's acceptance bar for total payload reduction on fig06.
REQUIRED_REDUCTION_FACTOR = 5.0


def _measure_fig06_payloads(scale):
    rows = []
    for job in get_matrix("fig06", scale=scale).expand():
        runner = ExperimentRunner(job.spec)
        record = runner.run_record(key=job.key, axes=job.axes)
        # What the pre-redesign worker pickled back per job...
        old_payload = pickle.dumps(
            (job.index, ScenarioResult.from_record(record), runner.metrics)
        )
        # ...vs the streamed record the redesigned worker ships.
        new_payload = pickle.dumps((job.index, record))
        rows.append((job.key, len(old_payload), len(new_payload)))
    return rows


def test_ipc_payload_reduction(benchmark, figure_scale):
    rows = run_once(benchmark, _measure_fig06_payloads, figure_scale)

    emit("\n=== IPC payload per fig06 job: collector shipping vs streamed records ===")
    emit(f"{'job':>32} {'collector (B)':>14} {'record (B)':>11} {'factor':>7}")
    for key, old_bytes, new_bytes in rows:
        emit(f"{key:>32} {old_bytes:>14} {new_bytes:>11} {old_bytes / new_bytes:>6.1f}x")
    total_old = sum(old for _, old, _ in rows)
    total_new = sum(new for _, _, new in rows)
    factor = total_old / total_new
    emit(f"{'TOTAL':>32} {total_old:>14} {total_new:>11} {factor:>6.1f}x")

    assert factor >= REQUIRED_REDUCTION_FACTOR, (
        f"expected >= {REQUIRED_REDUCTION_FACTOR}x IPC payload reduction, "
        f"got {factor:.1f}x ({total_old} -> {total_new} bytes)"
    )
    # Every single job must shrink, not just the total.
    assert all(old > new for _, old, new in rows)
