"""Lint-engine benchmark: the graph phase must stay a cheap second pass.

The two-phase engine parses every file once and builds the call graph at
most once, so the project-wide T/L/P families should cost a fraction of
the parse-dominated per-file pass — not multiply it.  This benchmark times
a full run (all rules, graph built) against a per-file-only run (graph
families ignored, graph never built) over the same tree and holds the
ratio under 2x, the ISSUE's acceptance bar for "the graph pass rides
along for free-ish".
"""

import dataclasses
from pathlib import Path
from time import perf_counter

from benchmarks.conftest import emit, run_once
from repro.lint import default_registry, load_config, run_lint

#: Acceptance bar: full two-phase wall <= 2x the per-file-only wall.
MAX_TWO_PHASE_RATIO = 2.0

#: Same tree the CI lint gate covers.
LINT_PATHS = ("src", "tests", "benchmarks")

ROUNDS = 2


def _measure_two_phase_overhead():
    root = Path(__file__).resolve().parents[1]
    config = load_config(root, paths=LINT_PATHS)
    graph_ids = tuple(
        registration.id
        for registration in default_registry().select()
        if registration.rule_class.needs_graph
    )
    per_file_config = dataclasses.replace(
        config, ignore=(*config.ignore, *graph_ids)
    )

    per_file_walls, full_walls = [], []
    for _ in range(ROUNDS):  # interleaved; best-of damps scheduler noise
        started = perf_counter()
        per_file_report = run_lint(per_file_config)
        per_file_walls.append(perf_counter() - started)
        started = perf_counter()
        full_report = run_lint(config)
        full_walls.append(perf_counter() - started)

    assert not per_file_report.graph_built, "per-file run must skip the graph"
    assert full_report.graph_built, "full run must build the graph"
    return (
        min(per_file_walls),
        min(full_walls),
        per_file_report.files_checked,
        len(graph_ids),
    )


def test_two_phase_lint_within_2x_of_per_file(benchmark):
    per_file_wall, full_wall, files, graph_rules = run_once(
        benchmark, _measure_two_phase_overhead
    )

    ratio = full_wall / per_file_wall
    emit("\n=== repro lint: per-file pass vs full two-phase run ===")
    emit(f"{'run':>28} {'files':>6} {'wall (s)':>9}")
    emit(f"{'per-file rules only':>28} {files:>6} {per_file_wall:>9.3f}")
    emit(
        f"{'full (+%d graph rules)' % graph_rules:>28} {files:>6} "
        f"{full_wall:>9.3f}"
    )
    emit(f"{'ratio':>28} {ratio:>16.2f}x (bar: <= {MAX_TWO_PHASE_RATIO}x)")

    assert ratio <= MAX_TWO_PHASE_RATIO, (
        f"two-phase lint took {ratio:.2f}x the per-file pass "
        f"({full_wall:.3f}s vs {per_file_wall:.3f}s); "
        f"bar is {MAX_TWO_PHASE_RATIO}x"
    )
