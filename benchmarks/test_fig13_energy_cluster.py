"""Figure 13 — energy vs transmission radius, cluster-based hierarchical
communication, with and without transient failures.

Paper shape: SPMS consumes 35-59 % less energy than SPIN in the failure-free
case, the difference grows with the radius (more scope for multi-hop routes to
the cluster head), and the failure runs cost more than the failure-free runs.
"""

from repro.experiments.claims import energy_savings_across
from repro.experiments.figures import figure13_energy_cluster

from benchmarks.conftest import emit, print_figure, run_once


def test_fig13_energy_cluster(benchmark, figure_scale):
    sweep = run_once(benchmark, figure13_energy_cluster, figure_scale)
    print_figure(
        f"Figure 13: energy per data item (uJ) vs transmission radius, cluster traffic "
        f"({figure_scale.fixed_num_nodes} nodes)",
        sweep,
        "energy_per_item_uj",
        note="Curves: spms/spin (failure free), f-spms/f-spin (transient failures).",
    )
    savings = energy_savings_across(sweep)
    emit("SPMS energy saving per point, failure free (%):", [round(s, 1) for s in savings])

    assert set(sweep.results) == {"spms", "spin", "f-spms", "f-spin"}
    spin = sweep.series("spin", "energy_per_item_uj")
    spms = sweep.series("spms", "energy_per_item_uj")
    # SPMS wins at every radius and the saving grows with the radius.
    assert all(s < p for s, p in zip(spms, spin))
    assert savings[-1] > savings[0]
    mean_saving = sum(savings) / len(savings)
    assert mean_saving > 25.0
    # The cluster heads actually receive the data.
    assert all(r.delivery_ratio > 0.9 for r in sweep.results["spms"])
    assert all(r.delivery_ratio > 0.9 for r in sweep.results["spin"])
