"""Figure 8 — end-to-end delay vs number of nodes (static, failure free).

Paper shape: delay grows with the number of nodes for both protocols, SPMS is
consistently faster, and the gap widens with the field size.  (The paper
reports up to a ~10x gap with its MAC model; our MAC model yields a smaller
but consistently positive gap — see EXPERIMENTS.md.)
"""

from repro.experiments.claims import delay_ratios_across
from repro.experiments.figures import figure8_delay_vs_nodes

from benchmarks.conftest import emit, print_figure, run_once


def test_fig08_delay_vs_nodes(benchmark, figure_scale):
    sweep = run_once(benchmark, figure8_delay_vs_nodes, figure_scale)
    print_figure(
        "Figure 8: average end-to-end delay (ms) vs number of nodes (radius = 20 m)",
        sweep,
        "average_delay_ms",
        note="Paper: SPMS is roughly an order of magnitude faster; gap widens with N.",
    )
    ratios = delay_ratios_across(sweep)
    emit("SPIN/SPMS delay ratio per point:", [round(r, 2) for r in ratios])

    spin = sweep.series("spin", "average_delay_ms")
    spms = sweep.series("spms", "average_delay_ms")
    # Delay grows with the field size for both protocols.
    assert spin[-1] > spin[0]
    assert spms[-1] > spms[0]
    # SPMS is faster (the paper's Figure 8 also shows the two curves touching
    # at the smallest field, so the first point only needs to be a near-tie).
    assert all(s < p * 1.15 for s, p in zip(spms, spin))
    assert all(s < p for s, p in zip(spms[2:], spin[2:]))
    # The absolute gap widens with the number of nodes.
    assert (spin[-1] - spms[-1]) > (spin[0] - spms[0])
