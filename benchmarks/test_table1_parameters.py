"""Table 1 — simulation parameters.

Regenerates the parameter table the whole evaluation is driven by and checks
it is exactly what the experiment configuration uses.
"""

from repro.experiments.config import SimulationConfig, TABLE1_PARAMETERS
from repro.experiments.figures import table1_parameters

from benchmarks.conftest import emit, run_once


def test_table1_parameters(benchmark):
    params = run_once(benchmark, table1_parameters)

    emit("\n\n=== Table 1: simulation parameters ===")
    for key, value in params.items():
        emit(f"  {key:<42} {value}")

    assert params == TABLE1_PARAMETERS
    config = SimulationConfig()
    assert config.adv_size_bytes == params["req_or_adv_size_bytes"]
    assert config.data_size_bytes == params["req_or_adv_size_bytes"] * params["data_to_req_size_ratio"]
    assert config.t_tx_per_byte_ms == params["transmission_time_ms_per_byte"]
    assert config.t_proc_ms == params["processing_time_ms"]
    assert config.slot_time_ms == params["slot_time_ms"]
    assert config.num_slots == params["num_slots"]
