"""Figure 3 — analytical SPIN/SPMS latency ratio vs transmission radius.

Paper shape: the ratio starts near 1 for small radii and grows towards ~2.8
(the worked example gives 2.7865 at n1=45, ns=5).
"""

import pytest

from repro.analysis.delay_model import AnalysisParameters, delay_ratio
from repro.experiments.figures import figure3_delay_ratio

from benchmarks.conftest import print_series, run_once


def test_fig03_delay_ratio(benchmark):
    series = run_once(benchmark, figure3_delay_ratio, tuple(range(2, 31, 2)))
    print_series(
        "Figure 3: DelaySPIN / DelaySPMS vs transmission radius (analytical)",
        series,
        "radius (m)",
        "ratio",
    )

    ratios = [ratio for _, ratio in series]
    # Shape: monotonically non-decreasing, SPMS never slower, bounded by 3.
    assert all(b >= a - 1e-12 for a, b in zip(ratios, ratios[1:]))
    assert all(1.0 <= ratio < 3.0 for ratio in ratios)
    assert ratios[-1] > 2.0
    # Worked example from the paper.
    assert delay_ratio(AnalysisParameters()) == pytest.approx(2.7865, abs=1e-3)
