"""Ablation — shared-medium channel reservation.

The paper's simulator models the MAC purely as the ``G n**2`` access-delay
term.  Our network can additionally serialise transmissions that share the
medium (virtual carrier sense).  This ablation turns that model on and checks
the paper's qualitative conclusions are not an artefact of omitting it: SPMS
still saves energy, and its low-power spatial reuse makes the *additional*
queueing delay it suffers smaller than SPIN's.
"""

from repro.experiments.claims import energy_saving_percent
from repro.experiments.config import SimulationConfig
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import all_to_all_scenario

from benchmarks.conftest import emit, run_once


def test_ablation_channel_reservation(benchmark, figure_scale):
    def run_all():
        results = {}
        for reservation in (False, True):
            config = SimulationConfig(
                num_nodes=figure_scale.fixed_num_nodes,
                packets_per_node=1,
                transmission_radius_m=20.0,
                channel_reservation=reservation,
                arrival_mean_interarrival_ms=50.0,
                seed=figure_scale.seed,
            )
            for protocol in ("spms", "spin"):
                results[(protocol, reservation)] = run_scenario(
                    all_to_all_scenario(protocol, config)
                )
        return results

    results = run_once(benchmark, run_all)

    emit("\n\n=== Ablation: shared-medium reservation (queueing) ===")
    emit(f"{'protocol':>9} {'reservation':>12} {'energy/item':>13} {'delay (ms)':>11}")
    for (protocol, reservation), result in sorted(results.items()):
        emit(
            f"{protocol:>9} {str(reservation):>12} {result.energy_per_item_uj:>13.2f} "
            f"{result.average_delay_ms:>11.2f}"
        )

    # Energy conclusions are unchanged by the channel model.
    for reservation in (False, True):
        saving = energy_saving_percent(
            results[("spin", reservation)], results[("spms", reservation)]
        )
        assert saving > 20.0
    # Queueing hurts SPIN's delay more than SPMS's (spatial reuse).
    spin_penalty = (
        results[("spin", True)].average_delay_ms - results[("spin", False)].average_delay_ms
    )
    spms_penalty = (
        results[("spms", True)].average_delay_ms - results[("spms", False)].average_delay_ms
    )
    assert spin_penalty > 0.0
    assert spms_penalty < spin_penalty * 1.5
