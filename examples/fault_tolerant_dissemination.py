#!/usr/bin/env python3
"""Walk through the paper's fault-tolerance mechanism (Sections 3.4 / 3.5).

Reproduces the Figure 2 topology — source A with zone neighbours r1, r2 and C,
where the minimum-power route from A to C is A -> r1 -> r2 -> C — and injects
the two failure cases the paper analyses:

* Case 1: r2 fails *before* advertising the data.
* Case 2: r2 fails *after* advertising the data.

In both cases C recovers using its Primary/Secondary Originator Nodes
(PRONE / SCONE) and the tau_DAT timeout, exactly as described in the paper.
The script prints a packet-level trace of the recovery.

Usage::

    python examples/fault_tolerant_dissemination.py
"""

from __future__ import annotations

from repro import build_sandbox, line_positions

NODE_NAMES = {0: "A", 1: "r1", 2: "r2", 3: "C"}


def pretty(label: str) -> str:
    """Replace numeric node ids with the paper's node names in a trace label."""
    for node_id, name in NODE_NAMES.items():
        label = label.replace(f" {node_id}->", f" {name}->")
        label = label.replace(f"->{node_id} ", f"->{name} ")
        label = label.replace(f"final={node_id})", f"final={name})")
    return label


def run_case(title: str, fail_when: str) -> None:
    print(f"\n=== {title} ===")
    sandbox = build_sandbox(
        line_positions(4, spacing_m=5.0),
        protocol="spms",
        radius_m=20.0,
        trace=True,
        protocol_options={"tout_adv_ms": 2.0, "tout_dat_ms": 6.0},
    )
    sandbox.originate("reading", source=0, destinations=[1, 2, 3])

    if fail_when == "before_adv":
        sandbox.network.fail_node(2)
        print("r2 failed immediately (before it could request or advertise).")
    else:

        def kill_after_adv() -> None:
            if sandbox.nodes[2].cache.items():
                sandbox.network.fail_node(2)
                print(f"[{sandbox.sim.now:8.3f} ms] r2 failed (after obtaining and advertising).")
            else:
                sandbox.sim.schedule(1.0, kill_after_adv)

        sandbox.sim.schedule(10.0, kill_after_adv)

    sandbox.run()

    print("\nPacket trace:")
    for record in sandbox.sim.trace_log.filter(category="packet"):
        print(f"  [{record.time:8.3f} ms] {pretty(record.label)}")

    print("\nOutcome:")
    for node_id in (1, 2, 3):
        status = "received" if sandbox.delivered("reading", node_id) else "did NOT receive"
        down = " (still failed)" if sandbox.network.is_failed(node_id) else ""
        print(f"  {NODE_NAMES[node_id]:>2}: {status} the data{down}")
    if sandbox.nodes[3].cache.items():
        prone, scone = sandbox.nodes[3].originators(sandbox.nodes[3].cache.items()[0].descriptor)
        print(
            "  C's final PRONE/SCONE: "
            f"{NODE_NAMES.get(prone, prone)} / {NODE_NAMES.get(scone, scone)}"
        )
    print(f"  C escalated {sandbox.nodes[3].escalations} time(s) after tau_DAT expiries")


def main() -> None:
    print("SPMS fault tolerance on the Figure 2 topology: A - r1 - r2 - C (5 m apart)")
    run_case("Case 1: r2 fails before sending its ADV", fail_when="before_adv")
    run_case("Case 2: r2 fails after sending its ADV", fail_when="after_adv")


if __name__ == "__main__":
    main()
