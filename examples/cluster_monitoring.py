#!/usr/bin/env python3
"""Cluster-based hierarchical data collection (Section 5.2 of the paper).

A 100-node field is partitioned into clusters; members report sensor readings
to their cluster head, and 5 % of the other nodes in the source's zone are
also interested.  The script compares SPMS and SPIN with and without the
Table 1 transient-failure process — the experiment behind Figure 13.

Usage::

    python examples/cluster_monitoring.py [num_nodes] [radius_m]
"""

from __future__ import annotations

import sys

from repro import FailureConfig, SimulationConfig, cluster_scenario, run_scenario
from repro.experiments.claims import energy_saving_percent


def main() -> None:
    num_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    radius_m = float(sys.argv[2]) if len(sys.argv) > 2 else 20.0
    config = SimulationConfig(
        num_nodes=num_nodes,
        transmission_radius_m=radius_m,
        packets_per_node=1,
        arrival_mean_interarrival_ms=20.0,
        seed=2,
    )

    print(f"Cluster-based hierarchical collection on {num_nodes} nodes, radius {radius_m:.0f} m")
    print("Members report to their cluster head; 5 % of zone bystanders also subscribe.\n")

    rows = []
    for label, failures in (("failure-free", None), ("with transient failures", FailureConfig())):
        results = {}
        for protocol in ("spms", "spin"):
            results[protocol] = run_scenario(
                cluster_scenario(protocol, config, packets_per_member=1, failures=failures)
            )
        rows.append((label, results))

    header = (
        f"{'scenario':>26} {'protocol':>8} {'energy/item (uJ)':>17} "
        f"{'avg delay (ms)':>15} {'delivered':>10} {'failures':>9}"
    )
    print(header)
    print("-" * len(header))
    for label, results in rows:
        for protocol, result in results.items():
            print(
                f"{label:>26} {protocol:>8} {result.energy_per_item_uj:>17.3f} "
                f"{result.average_delay_ms:>15.2f} {result.delivery_ratio:>9.0%} "
                f"{result.failures_injected:>9}"
            )
        saving = energy_saving_percent(results["spin"], results["spms"])
        print(f"{'':>26} -> SPMS saves {saving:.1f} % energy (paper: 35-59 % failure-free)\n")


if __name__ == "__main__":
    main()
