#!/usr/bin/env python3
"""Quickstart: compare SPMS against SPIN on an all-to-all workload.

Runs the two protocols on the same 49-node sensor field (uniform 5 m grid,
20 m transmission radius, Table 1 radio parameters) and prints the paper's two
headline metrics — energy per disseminated data item and average end-to-end
delay — plus the relative gains.

Usage::

    python examples/quickstart.py [num_nodes] [radius_m]
"""

from __future__ import annotations

import sys

from repro import SimulationConfig, all_to_all_scenario, run_scenario
from repro.experiments.claims import delay_ratio, energy_saving_percent


def main() -> None:
    num_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 49
    radius_m = float(sys.argv[2]) if len(sys.argv) > 2 else 20.0

    config = SimulationConfig(
        num_nodes=num_nodes,
        transmission_radius_m=radius_m,
        packets_per_node=1,
        seed=1,
    )
    print(f"Sensor field: {num_nodes} nodes, 5 m grid, {radius_m:.0f} m transmission radius")
    print(f"Workload    : all-to-all, {config.packets_per_node} new data item(s) per node\n")

    results = {}
    for protocol in ("spms", "spin"):
        results[protocol] = run_scenario(all_to_all_scenario(protocol, config))

    header = f"{'protocol':>10} {'energy/item (uJ)':>18} {'avg delay (ms)':>16} {'delivered':>10}"
    print(header)
    print("-" * len(header))
    for protocol, result in results.items():
        print(
            f"{protocol:>10} {result.energy_per_item_uj:>18.2f} "
            f"{result.average_delay_ms:>16.2f} {result.delivery_ratio:>9.0%}"
        )

    saving = energy_saving_percent(results["spin"], results["spms"])
    speedup = delay_ratio(results["spin"], results["spms"])
    print()
    print(f"SPMS energy saving over SPIN : {saving:5.1f} %  (paper: 26-43 % static failure-free)")
    print(f"SPIN/SPMS delay ratio        : {speedup:5.2f}x (paper reports up to ~10x)")


if __name__ == "__main__":
    main()
