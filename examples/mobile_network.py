#!/usr/bin/env python3
"""Mobility and the routing-maintenance break-even point (Section 5.1.3).

When nodes move, SPMS must re-run the distributed Bellman-Ford inside every
zone before data can flow again, and that re-convergence costs energy SPIN
never pays.  The paper's break-even argument: enough data packets must flow
between mobility epochs to amortise the rebuild.  This script measures both
protocols with step mobility, reports the measured break-even, and shows how
the SPMS advantage shrinks (but survives) under mobility.

Usage::

    python examples/mobile_network.py [num_nodes] [packets_per_node]
"""

from __future__ import annotations

import sys

from repro import MobilityConfig, SimulationConfig, all_to_all_scenario, run_scenario
from repro.analysis.breakeven import breakeven_packets
from repro.experiments.claims import energy_saving_percent


def main() -> None:
    num_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    packets_per_node = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    config = SimulationConfig(
        num_nodes=num_nodes,
        packets_per_node=packets_per_node,
        transmission_radius_m=20.0,
        arrival_mean_interarrival_ms=20.0,
        seed=4,
    )
    mobility = MobilityConfig(num_epochs=1, move_fraction=0.1, max_displacement_m=10.0)

    print(f"{num_nodes} nodes, all-to-all, {packets_per_node} packet(s) per node, "
          f"{mobility.num_epochs} mobility epoch(s) moving {mobility.move_fraction:.0%} of nodes\n")

    static = {p: run_scenario(all_to_all_scenario(p, config)) for p in ("spms", "spin")}
    mobile = {
        p: run_scenario(all_to_all_scenario(p, config, mobility=mobility))
        for p in ("spms", "spin")
    }

    header = f"{'scenario':>10} {'protocol':>8} {'energy/item (uJ)':>17} {'routing energy (uJ)':>20}"
    print(header)
    print("-" * len(header))
    for label, results in (("static", static), ("mobile", mobile)):
        for protocol, result in results.items():
            print(
                f"{label:>10} {protocol:>8} {result.energy_per_item_uj:>17.2f} "
                f"{result.routing_energy_uj:>20.1f}"
            )

    static_saving = energy_saving_percent(static["spin"], static["spms"])
    mobile_saving = energy_saving_percent(mobile["spin"], mobile["spms"])
    print()
    print(f"SPMS energy saving, static   : {static_saving:5.1f} %  (paper: 26-43 %)")
    print(f"SPMS energy saving, mobility : {mobile_saving:5.1f} %  (paper: 5-21 %)")

    # Break-even: how many packets must flow between two mobility epochs so
    # that the data-plane saving amortises one routing rebuild.
    rebuild_energy = mobile["spms"].routing_energy_uj / max(
        1, mobile["spms"].routing_rebuilds - 1
    )
    spin_per_packet = static["spin"].energy_per_item_uj
    spms_per_packet = static["spms"].energy_per_item_uj
    breakeven = breakeven_packets(rebuild_energy, spin_per_packet, spms_per_packet)
    packets_per_rebuild = mobile["spms"].items_generated / max(1, mobility.num_epochs)
    print()
    print(f"One routing rebuild costs    : {rebuild_energy:8.1f} uJ")
    print(f"Per-packet data-plane saving : {spin_per_packet - spms_per_packet:8.2f} uJ")
    print(f"Break-even packets per rebuild: {breakeven:7.1f}  (paper computes 239.18 for its setup)")
    print(f"This run ships ~{packets_per_rebuild:.0f} packets per rebuild -> SPMS "
          f"{'wins' if packets_per_rebuild > breakeven else 'loses'} under mobility here.")


if __name__ == "__main__":
    main()
