#!/usr/bin/env python3
"""The Section 4 closed-form models: Figures 3 and 5 and the worked example.

Prints the paper's analytical delay ratio (2.7865 with the sample constants),
the Figure 3 latency-ratio-vs-radius series and the Figure 5
energy-ratio-vs-radius series as text tables.

Usage::

    python examples/analytical_models.py
"""

from __future__ import annotations

from repro.analysis.delay_model import (
    AnalysisParameters,
    delay_ratio,
    delay_ratio_series,
    spin_delay_failure_free,
    spms_delay_failure_free,
)
from repro.analysis.energy_model import energy_ratio_series


def main() -> None:
    params = AnalysisParameters()
    print("Section 4.1 worked example (Ttx=0.05, Tproc=0.02, A:D=1:30, G=0.01, n1=45, ns=5)")
    print(f"  Delay_SPIN  = {spin_delay_failure_free(params):7.2f} ms")
    print(f"  Delay_SPMS  = {spms_delay_failure_free(params):7.2f} ms")
    print(f"  Ratio       = {delay_ratio(params):7.4f}   (paper: 2.7865)\n")

    print("Figure 3 — SPIN/SPMS latency ratio vs transmission radius (analytical)")
    print(f"{'radius (m)':>12} {'ratio':>8}")
    for radius, ratio in delay_ratio_series(range(2, 31, 2)):
        print(f"{radius:>12.0f} {ratio:>8.3f}")

    print("\nFigure 5 — SPIN/SPMS energy ratio vs transmission radius (analytical, alpha=3.5)")
    print(f"{'radius':>8} {'ratio':>10}")
    for radius, ratio in energy_ratio_series(range(1, 31)):
        print(f"{radius:>8d} {ratio:>10.2f}")


if __name__ == "__main__":
    main()
